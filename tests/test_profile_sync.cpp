// Tests for the profile-level synchronization simulator: writes through
// online replicas, reader experience, staleness, and eventual consistency.
#include <gtest/gtest.h>

#include "net/profile_sync.hpp"
#include "util/error.hpp"

namespace dosn::net {
namespace {

constexpr Seconds kH = 3600;

DaySchedule window(Seconds start_h, Seconds end_h) {
  return DaySchedule(interval::IntervalSet::single(start_h * kH, end_h * kH));
}

TEST(ProfileSync, WriteSucceedsWhenReplicaOnline) {
  std::vector<DaySchedule> nodes{window(8, 12)};
  std::vector<WriteEvent> writes{{9 * kH, /*author=*/42}};
  ProfileSyncConfig cfg;
  cfg.horizon_days = 2;
  const auto r = simulate_profile_sync(nodes, {}, writes, {}, cfg);
  EXPECT_EQ(r.writes_succeeded, 1u);
  EXPECT_DOUBLE_EQ(r.write_success_rate, 1.0);
  EXPECT_EQ(r.final_posts, 1u);
}

TEST(ProfileSync, WriteFailsWhenProfileUnreachable) {
  std::vector<DaySchedule> nodes{window(8, 12)};
  std::vector<WriteEvent> writes{{14 * kH, 42}, {9 * kH, 42}};
  // events must merely be within horizon; order handled internally
  std::sort(writes.begin(), writes.end(),
            [](const WriteEvent& a, const WriteEvent& b) {
              return a.time < b.time;
            });
  ProfileSyncConfig cfg;
  cfg.horizon_days = 1;
  const auto r = simulate_profile_sync(nodes, {}, writes, {}, cfg);
  EXPECT_EQ(r.writes_succeeded, 1u);  // the 14:00 write finds nobody online
  EXPECT_DOUBLE_EQ(r.write_success_rate, 0.5);
}

TEST(ProfileSync, ReadersSeeFreshStateWhenCoResident) {
  std::vector<DaySchedule> nodes{window(8, 12)};
  std::vector<DaySchedule> readers{window(8, 12)};
  std::vector<WriteEvent> writes{{9 * kH, 1}};
  std::vector<ReadEvent> reads{{10 * kH, 0}};
  ProfileSyncConfig cfg;
  cfg.horizon_days = 1;
  const auto r = simulate_profile_sync(nodes, readers, writes, reads, cfg);
  ASSERT_EQ(r.reads.size(), 1u);
  EXPECT_TRUE(r.reads[0].success);
  EXPECT_EQ(r.reads[0].missing, 0u);
  EXPECT_EQ(r.reads[0].staleness, 0);
  EXPECT_DOUBLE_EQ(r.read_success_rate, 1.0);
}

TEST(ProfileSync, ReadFailsWhenNoReplicaOnline) {
  std::vector<DaySchedule> nodes{window(8, 12)};
  std::vector<DaySchedule> readers{window(14, 16)};
  std::vector<ReadEvent> reads{{15 * kH, 0}};
  ProfileSyncConfig cfg;
  cfg.horizon_days = 1;
  const auto r = simulate_profile_sync(nodes, readers, {}, reads, cfg);
  EXPECT_FALSE(r.reads[0].success);
  EXPECT_DOUBLE_EQ(r.read_success_rate, 0.0);
}

TEST(ProfileSync, StalenessMeasuresUnsyncedPosts) {
  // Replica A online 08-10, replica B online 20-22 (disjoint under
  // ConRep). A write lands on A on day 0; a read served by B on day 0
  // evening misses it.
  std::vector<DaySchedule> nodes{window(8, 10), window(20, 22)};
  std::vector<DaySchedule> readers{window(20, 22)};
  std::vector<WriteEvent> writes{{9 * kH, 7}};
  std::vector<ReadEvent> reads{{21 * kH, 0}};
  ProfileSyncConfig cfg;
  cfg.horizon_days = 1;
  const auto r = simulate_profile_sync(nodes, readers, writes, reads, cfg);
  ASSERT_TRUE(r.reads[0].success);
  EXPECT_EQ(r.reads[0].missing, 1u);
  EXPECT_EQ(r.reads[0].staleness, 12 * kH);  // post from 09:00, read 21:00
  EXPECT_FALSE(r.converged);                 // B never learned the post
}

TEST(ProfileSync, UnconRepRelayFixesStaleness) {
  std::vector<DaySchedule> nodes{window(8, 10), window(20, 22)};
  std::vector<DaySchedule> readers{window(20, 22)};
  std::vector<WriteEvent> writes{{9 * kH, 7}};
  std::vector<ReadEvent> reads{{21 * kH, 0}};
  ProfileSyncConfig cfg;
  cfg.connectivity = placement::Connectivity::kUnconRep;
  cfg.horizon_days = 1;
  const auto r = simulate_profile_sync(nodes, readers, writes, reads, cfg);
  EXPECT_EQ(r.reads[0].missing, 0u);
  EXPECT_TRUE(r.converged);
}

TEST(ProfileSync, ConvergenceViaOverlappingChain) {
  // A 08-11, B 10-13, C 12-15: posts anywhere reach everyone same day.
  std::vector<DaySchedule> nodes{window(8, 11), window(10, 13),
                                 window(12, 15)};
  std::vector<WriteEvent> writes{{8 * kH + 1800, 1}, {12 * kH + 1800, 2}};
  ProfileSyncConfig cfg;
  cfg.horizon_days = 2;
  const auto r = simulate_profile_sync(nodes, {}, writes, {}, cfg);
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.final_posts, 2u);
}

TEST(ProfileSync, AuthorSequenceNumbersNeverCollide) {
  // Two writes by the same author through different "groups" (morning and
  // evening replicas) must both survive as distinct posts.
  std::vector<DaySchedule> nodes{window(8, 10), window(20, 22)};
  std::vector<WriteEvent> writes{{9 * kH, 5}, {21 * kH, 5}};
  ProfileSyncConfig cfg;
  cfg.connectivity = placement::Connectivity::kUnconRep;
  cfg.horizon_days = 2;
  const auto r = simulate_profile_sync(nodes, {}, writes, {}, cfg);
  EXPECT_EQ(r.writes_succeeded, 2u);
  EXPECT_EQ(r.final_posts, 2u);
  EXPECT_TRUE(r.converged);
}

TEST(ProfileSync, EmptyEventStreams) {
  std::vector<DaySchedule> nodes{window(8, 10)};
  ProfileSyncConfig cfg;
  cfg.horizon_days = 1;
  const auto r = simulate_profile_sync(nodes, {}, {}, {}, cfg);
  EXPECT_DOUBLE_EQ(r.write_success_rate, 1.0);
  EXPECT_DOUBLE_EQ(r.read_success_rate, 1.0);
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.final_posts, 0u);
}

TEST(ProfileSync, ValidatesInputs) {
  std::vector<DaySchedule> nodes{window(8, 10)};
  ProfileSyncConfig cfg;
  cfg.horizon_days = 0;
  EXPECT_THROW(simulate_profile_sync(nodes, {}, {}, {}, cfg), ConfigError);
  cfg.horizon_days = 1;
  std::vector<ReadEvent> bad_reader{{0, 3}};
  EXPECT_THROW(simulate_profile_sync(nodes, {}, {}, bad_reader, cfg),
               ConfigError);
  std::vector<WriteEvent> bad_time{{5 * interval::kDaySeconds, 0}};
  EXPECT_THROW(simulate_profile_sync(nodes, {}, bad_time, {}, cfg),
               ConfigError);
}

TEST(ProfileSync, ReadsWithinSchedulesRespectReaders) {
  std::vector<DaySchedule> readers{window(8, 10), DaySchedule{},
                                   window(20, 22)};
  util::Rng rng(3);
  const auto reads = reads_within_schedules(readers, 30, 5, rng);
  ASSERT_EQ(reads.size(), 30u);
  for (std::size_t i = 1; i < reads.size(); ++i)
    EXPECT_LE(reads[i - 1].time, reads[i].time);
  for (const auto& r : reads) {
    EXPECT_NE(r.reader, 1u);
    EXPECT_TRUE(readers[r.reader].online_at(r.time));
  }
}

TEST(ProfileSync, EmpiricalReadRateTracksAnalyticAodTime) {
  // Readers probe during their own online time; the success rate must
  // approximate the analytic availability-on-demand-time of the replica
  // set with respect to those readers.
  std::vector<DaySchedule> nodes{window(8, 12), window(11, 15)};
  std::vector<DaySchedule> readers{window(9, 13), window(14, 18)};
  util::Rng rng(5);
  const auto reads = reads_within_schedules(readers, 4000, 14, rng);
  ProfileSyncConfig cfg;
  cfg.horizon_days = 14;
  const auto r = simulate_profile_sync(nodes, readers, {}, reads, cfg);

  // Analytic: demand union 09-13 and 14-18 (8h); profile union 08-15
  // covers 09-13 fully and 14-15 of the second window: 5h of 8h.
  EXPECT_NEAR(r.read_success_rate, 5.0 / 8.0, 0.03);
}

TEST(ProfileSyncFaults, ZeroFaultPlanBitIdentical) {
  std::vector<DaySchedule> nodes{window(8, 10), window(9, 13)};
  std::vector<DaySchedule> readers{window(8, 22)};
  std::vector<WriteEvent> writes{{9 * kH, 7}, {11 * kH, 8}};
  std::vector<ReadEvent> reads{{10 * kH, 0}, {12 * kH, 0}, {20 * kH, 0}};
  ProfileSyncConfig plain;
  plain.horizon_days = 3;
  ProfileSyncConfig seeded = plain;
  seeded.faults.seed = 0xabcdef;  // seed without faults: no effect
  const auto a = simulate_profile_sync(nodes, readers, writes, reads, plain);
  const auto b = simulate_profile_sync(nodes, readers, writes, reads, seeded);
  EXPECT_EQ(a.writes_succeeded, b.writes_succeeded);
  EXPECT_EQ(a.read_success_rate, b.read_success_rate);
  EXPECT_EQ(a.mean_missing, b.mean_missing);
  EXPECT_EQ(a.max_staleness, b.max_staleness);
  EXPECT_EQ(a.converged, b.converged);
  ASSERT_EQ(a.reads.size(), b.reads.size());
  for (std::size_t i = 0; i < a.reads.size(); ++i) {
    EXPECT_EQ(a.reads[i].success, b.reads[i].success);
    EXPECT_EQ(a.reads[i].missing, b.reads[i].missing);
    EXPECT_EQ(a.reads[i].staleness, b.reads[i].staleness);
  }
}

TEST(ProfileSyncFaults, DegradedReadsAreFlagged) {
  // Same scenario as StalenessMeasuresUnsyncedPosts: the evening read is
  // served with a post missing, which now marks it degraded.
  std::vector<DaySchedule> nodes{window(8, 10), window(20, 22)};
  std::vector<DaySchedule> readers{window(20, 22)};
  std::vector<WriteEvent> writes{{9 * kH, 7}};
  std::vector<ReadEvent> reads{{21 * kH, 0}};
  ProfileSyncConfig cfg;
  cfg.horizon_days = 1;
  const auto r = simulate_profile_sync(nodes, readers, writes, reads, cfg);
  ASSERT_TRUE(r.reads[0].success);
  EXPECT_TRUE(r.reads[0].degraded);
  EXPECT_EQ(r.degraded_reads, 1u);
  EXPECT_EQ(r.read_repairs, 0u);  // repair is off by default
}

TEST(ProfileSyncFaults, ReadRepairRestoresLostPosts) {
  // Replica A (08-10) accepts a post the reader sees at 09:00. Replica B
  // (20-22) never met A, so B's evening state misses the post — but the
  // reader's cache carries it and writes it back at the evening read.
  std::vector<DaySchedule> nodes{window(8, 10), window(20, 22)};
  std::vector<DaySchedule> readers{window(8, 22)};
  std::vector<WriteEvent> writes{{8 * kH + 1800, 7}};
  std::vector<ReadEvent> reads{{9 * kH, 0}, {21 * kH, 0}};
  ProfileSyncConfig cfg;
  cfg.horizon_days = 1;

  const auto without = simulate_profile_sync(nodes, readers, writes, reads,
                                             cfg);
  ASSERT_TRUE(without.reads[1].success);
  EXPECT_EQ(without.reads[1].missing, 1u);
  EXPECT_FALSE(without.converged);

  cfg.read_repair = true;
  const auto with = simulate_profile_sync(nodes, readers, writes, reads,
                                          cfg);
  ASSERT_TRUE(with.reads[1].success);
  // The read still observes the gap (repair happens at the same probe),
  // but the post is back in the group afterwards and the run reports it.
  EXPECT_EQ(with.reads[1].repaired, 1u);
  EXPECT_EQ(with.read_repairs, 1u);
  EXPECT_TRUE(with.converged);  // B ends the day with the post restored
}

TEST(ProfileSyncFaults, RelayOutageBlocksUnconRepBridging) {
  // UnconRepRelayFixesStaleness, with the relay down across both the
  // write and the evening read: the store can't bridge, and the blocked
  // path is visible through the degraded read.
  std::vector<DaySchedule> nodes{window(8, 10), window(20, 22)};
  std::vector<DaySchedule> readers{window(20, 22)};
  std::vector<WriteEvent> writes{{9 * kH, 7}};
  std::vector<ReadEvent> reads{{21 * kH, 0}};
  ProfileSyncConfig cfg;
  cfg.connectivity = placement::Connectivity::kUnconRep;
  cfg.horizon_days = 1;
  cfg.faults.relay_outages.push_back({7 * kH, 23 * kH});
  const auto r = simulate_profile_sync(nodes, readers, writes, reads, cfg);
  ASSERT_TRUE(r.reads[0].success);
  EXPECT_EQ(r.reads[0].missing, 1u);  // ConRep semantics during the outage
  EXPECT_TRUE(r.reads[0].degraded);
}

TEST(ProfileSyncFaults, RelayRecoveryRestoresDurability) {
  // Relay down only over the morning: the write lands in the live group,
  // the relay re-merges at 12:00 while node 0 is gone — so only what the
  // relay held survives until node 0 returns next day. The evening read
  // of day 1 sees the post via the recovered relay.
  std::vector<DaySchedule> nodes{window(8, 10), window(20, 22)};
  std::vector<DaySchedule> readers{window(20, 22)};
  std::vector<WriteEvent> writes{{9 * kH, 7}};
  std::vector<ReadEvent> reads{{21 * kH, 0},
                               {interval::kDaySeconds + 21 * kH, 0}};
  ProfileSyncConfig cfg;
  cfg.connectivity = placement::Connectivity::kUnconRep;
  cfg.horizon_days = 2;
  cfg.faults.relay_outages.push_back({7 * kH, 12 * kH});
  const auto r = simulate_profile_sync(nodes, readers, writes, reads, cfg);
  ASSERT_EQ(r.reads.size(), 2u);
  EXPECT_EQ(r.reads[0].missing, 1u);  // day 0: relay never saw the post
  EXPECT_EQ(r.reads[1].missing, 0u);  // day 1: node 0 re-synced the relay
}

TEST(ProfileSyncFaults, ChurnLowersWriteSuccess) {
  std::vector<DaySchedule> nodes{window(0, 12)};
  std::vector<WriteEvent> writes;
  for (int d = 0; d < 30; ++d)
    writes.push_back({d * interval::kDaySeconds + 6 * kH, 7});
  ProfileSyncConfig clean;
  clean.horizon_days = 30;
  const auto a = simulate_profile_sync(nodes, {}, writes, {}, clean);
  EXPECT_DOUBLE_EQ(a.write_success_rate, 1.0);

  ProfileSyncConfig flaky = clean;
  flaky.faults.seed = 31;
  flaky.faults.session_no_show = 0.5;
  const auto b = simulate_profile_sync(nodes, {}, writes, {}, flaky);
  EXPECT_LT(b.write_success_rate, 1.0);
}

}  // namespace
}  // namespace dosn::net
