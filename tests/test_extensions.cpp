// Tests for the extension components: the delay-graph primitives, the
// CoreGroup and Hybrid policies, the EnrichedSporadic model, the fairness
// load cap, and the distribution view of the study driver.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/replica_manager.hpp"
#include "graph/degree_stats.hpp"
#include "interval/delay_graph.hpp"
#include "onlinetime/enriched.hpp"
#include "onlinetime/sporadic.hpp"
#include "placement/core_group.hpp"
#include "placement/hybrid.hpp"
#include "sim/study.hpp"
#include "synth/presets.hpp"
#include "util/error.hpp"

namespace dosn {
namespace {

using interval::DaySchedule;
using interval::GroupDelayResult;
using interval::IntervalSet;
using interval::RendezvousMode;
using interval::Seconds;
using placement::Connectivity;
using placement::PolicyKind;

constexpr Seconds kH = 3600;

DaySchedule window(Seconds start_h, Seconds end_h) {
  return DaySchedule(IntervalSet::single(start_h * kH, end_h * kH));
}

// --- interval::group_delay ---------------------------------------------

TEST(GroupDelay, MatchesMetricsSemantics) {
  // Chain v1(06-12), v2(10-14), v3(13-17): diameter 45h (Fig 1 worked
  // example, see test_delay.cpp).
  std::vector<DaySchedule> nodes{window(6, 12), window(10, 14),
                                 window(13, 17)};
  const auto r = interval::group_delay(nodes, RendezvousMode::kDirect);
  EXPECT_TRUE(r.fully_connected);
  EXPECT_EQ(r.participants, 3u);
  EXPECT_EQ(r.diameter, 45 * kH);
}

TEST(GroupDelay, RelayNeverWorseThanDirect) {
  std::vector<DaySchedule> nodes{window(0, 3), window(2, 5), window(9, 12)};
  const auto direct = interval::group_delay(nodes, RendezvousMode::kDirect);
  const auto relay = interval::group_delay(nodes, RendezvousMode::kRelay);
  if (direct.fully_connected) {
    EXPECT_LE(relay.diameter, direct.diameter);
  }
  EXPECT_TRUE(relay.fully_connected);
}

TEST(GroupDelay, SkipsEmptyParticipants) {
  std::vector<DaySchedule> nodes{window(8, 10), DaySchedule{}, window(9, 11)};
  const auto r = interval::group_delay(nodes, RendezvousMode::kDirect);
  EXPECT_EQ(r.participants, 2u);
  EXPECT_TRUE(r.fully_connected);
}

TEST(GroupDelay, WorstTargetIndexesInputSpan) {
  std::vector<DaySchedule> nodes{window(8, 12), DaySchedule{}, window(11, 13),
                                 window(12, 14)};
  const auto r = interval::group_delay(nodes, RendezvousMode::kDirect);
  EXPECT_TRUE(r.fully_connected);
  EXPECT_LT(r.worst_target, nodes.size());
  EXPECT_NE(r.worst_target, 1u);  // the empty node cannot receive anything
}

TEST(PairDelay, DirectVsRelay) {
  const auto a = window(8, 10);
  const auto b = window(12, 14);
  EXPECT_EQ(interval::pair_delay(a, b, RendezvousMode::kDirect),
            std::nullopt);
  EXPECT_EQ(interval::pair_delay(a, b, RendezvousMode::kRelay), 4 * kH);
}

// --- CoreGroup policy ---------------------------------------------------

struct Fixture {
  std::vector<graph::UserId> candidates;
  std::vector<DaySchedule> schedules;
  trace::ActivityTrace trace;

  placement::PlacementContext context(graph::UserId user, Connectivity conn,
                                      std::size_t k) const {
    placement::PlacementContext c;
    c.user = user;
    c.candidates = candidates;
    c.schedules = schedules;
    c.trace = &trace;
    c.connectivity = conn;
    c.max_replicas = k;
    return c;
  }
};

TEST(CoreGroup, PrefersTightOverlaps) {
  // Owner 08-12. Candidate 1 hugs the owner (09-13); candidate 2 barely
  // touches (11-19, adds much more coverage but a big delay).
  Fixture f;
  f.candidates = {1, 2};
  f.schedules = {window(8, 12), window(9, 13), window(11, 19)};
  f.trace = trace::ActivityTrace(3, {});
  placement::CoreGroupPolicy policy;
  util::Rng rng(1);
  const auto r = policy.select(f.context(0, Connectivity::kConRep, 1), rng);
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r[0], 1u);  // MaxAv would pick 2; CoreGroup keeps delay low
}

TEST(CoreGroup, StillRequiresCoverageGain) {
  // A candidate fully inside the owner's window adds zero availability and
  // must not be selected even though it would keep the delay minimal.
  Fixture f;
  f.candidates = {1};
  f.schedules = {window(8, 12), window(9, 10)};
  f.trace = trace::ActivityTrace(2, {});
  placement::CoreGroupPolicy policy;
  util::Rng rng(1);
  EXPECT_TRUE(
      policy.select(f.context(0, Connectivity::kConRep, 1), rng).empty());
}

TEST(CoreGroup, DelayNoWorseThanMaxAvOnAverage) {
  // On a synthetic cohort, CoreGroup's delay should beat MaxAv's while
  // sacrificing some availability.
  auto preset = synth::scaled(synth::facebook_preset(), 0.02);
  util::Rng rng(99);
  const auto dataset = synth::generate_study_dataset(preset, rng);
  sim::Study study(dataset, 3);
  sim::Study::Options opts;
  opts.cohort_degree = graph::most_populated_degree(dataset.graph, 4, 12);
  opts.k_max = 4;
  opts.repetitions = 1;
  opts.policies = {PolicyKind::kMaxAv, PolicyKind::kCoreGroup};
  const auto sweep = study.replication_sweep(
      onlinetime::ModelKind::kSporadic, {}, Connectivity::kConRep, opts);
  const auto& maxav = sweep.policies[0].points.back();
  const auto& core = sweep.policies[1].points.back();
  EXPECT_LE(core.delay_actual_h, maxav.delay_actual_h + 1e-9);
  EXPECT_LE(core.availability, maxav.availability + 1e-9);
}

// --- Hybrid policy ------------------------------------------------------

TEST(Hybrid, AlphaOneFollowsActivity) {
  Fixture f;
  f.candidates = {1, 2};
  // Candidate 2 has huge coverage, candidate 1 has all the activity.
  f.schedules = {window(8, 10), window(9, 11), window(12, 22)};
  f.trace = trace::ActivityTrace(3, {{1, 0, 100}, {1, 0, 200}});
  placement::HybridPolicy activity_only(1.0);
  util::Rng rng(1);
  const auto r =
      activity_only.select(f.context(0, Connectivity::kUnconRep, 1), rng);
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r[0], 1u);
}

TEST(Hybrid, AlphaZeroFollowsCoverage) {
  Fixture f;
  f.candidates = {1, 2};
  f.schedules = {window(8, 10), window(9, 11), window(12, 22)};
  f.trace = trace::ActivityTrace(3, {{1, 0, 100}, {1, 0, 200}});
  placement::HybridPolicy coverage_only(0.0);
  util::Rng rng(1);
  const auto r =
      coverage_only.select(f.context(0, Connectivity::kUnconRep, 1), rng);
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r[0], 2u);
}

TEST(Hybrid, RespectsConRep) {
  Fixture f;
  f.candidates = {1, 2};
  // Candidate 2 never overlaps anyone.
  f.schedules = {window(8, 10), window(9, 11), window(20, 22)};
  f.trace = trace::ActivityTrace(3, {{2, 0, 100}});
  placement::HybridPolicy policy(0.5);
  util::Rng rng(1);
  const auto r = policy.select(f.context(0, Connectivity::kConRep, 2), rng);
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r[0], 1u);
}

TEST(Hybrid, RejectsBadAlpha) {
  EXPECT_THROW(placement::HybridPolicy(-0.1), ConfigError);
  EXPECT_THROW(placement::HybridPolicy(1.5), ConfigError);
}

TEST(Hybrid, FactoryPassesAlpha) {
  placement::PolicyParams params;
  params.hybrid_alpha = 0.25;
  const auto policy = placement::make_policy(PolicyKind::kHybrid, params);
  EXPECT_EQ(policy->name(), "Hybrid(0.25)");
}

// --- EnrichedSporadic model ---------------------------------------------

trace::Dataset tiny_activity_dataset() {
  graph::SocialGraphBuilder b(graph::GraphKind::kUndirected, 2);
  b.add_edge(0, 1);
  trace::Dataset d;
  d.graph = std::move(b).build();
  std::vector<trace::Activity> acts;
  for (int day = 0; day < 7; ++day)
    acts.push_back({0, 1, day * interval::kDaySeconds + 21 * kH});
  d.trace = trace::ActivityTrace(2, std::move(acts));
  return d;
}

TEST(EnrichedSporadic, ExtendsPlainSporadicCoverage) {
  const auto d = tiny_activity_dataset();
  onlinetime::SporadicModel plain(1200);
  onlinetime::EnrichedSporadicModel enriched(1200, 3.0, 2.0);
  util::Rng r1(7), r2(7);
  const auto plain_s = plain.schedules(d, r1);
  const auto rich_s = enriched.schedules(d, r2);
  EXPECT_GE(rich_s[0].online_seconds(), plain_s[0].online_seconds());
  EXPECT_GT(rich_s[0].online_seconds(), 0);
}

TEST(EnrichedSporadic, ZeroExtraMatchesSessionBudget) {
  const auto d = tiny_activity_dataset();
  onlinetime::EnrichedSporadicModel model(1200, 0.0, 2.0);
  util::Rng rng(7);
  const auto s = model.schedules(d, rng);
  EXPECT_LE(s[0].online_seconds(), 7 * 1200);
}

TEST(EnrichedSporadic, UserWithoutActivityStaysOffline) {
  const auto d = tiny_activity_dataset();
  onlinetime::EnrichedSporadicModel model(1200, 5.0, 2.0);
  util::Rng rng(7);
  const auto s = model.schedules(d, rng);
  EXPECT_TRUE(s[1].empty());  // user 1 never created anything
}

TEST(EnrichedSporadic, FactoryAndValidation) {
  onlinetime::ModelParams params;
  params.extra_sessions_per_day = 1.5;
  const auto model =
      onlinetime::make_model(onlinetime::ModelKind::kEnrichedSporadic, params);
  EXPECT_TRUE(model->randomized());
  EXPECT_NE(model->name().find("EnrichedSporadic"), std::string::npos);
  EXPECT_THROW(onlinetime::EnrichedSporadicModel(0), ConfigError);
  EXPECT_THROW(onlinetime::EnrichedSporadicModel(1200, -1.0), ConfigError);
}

// --- load cap fairness ---------------------------------------------------

TEST(LoadCap, BoundsPerHostLoad) {
  // Star graph: user 0 is everyone's only contact. Without a cap he hosts
  // every profile; with cap 2 he hosts at most 2.
  graph::SocialGraphBuilder b(graph::GraphKind::kUndirected, 6);
  for (graph::UserId u = 1; u < 6; ++u) b.add_edge(0, u);
  trace::Dataset d;
  d.graph = std::move(b).build();
  d.trace = trace::ActivityTrace(6, {});
  std::vector<DaySchedule> schedules(6, window(8, 12));

  core::AssignmentConfig cfg;
  cfg.policy = PolicyKind::kRandom;
  cfg.connectivity = Connectivity::kUnconRep;
  cfg.max_replicas = 1;

  util::Rng rng(1);
  const auto uncapped = core::assign_replicas(d, schedules, cfg, rng);
  EXPECT_EQ(uncapped.host_load[0], 5u);

  cfg.load_cap = 2;
  util::Rng rng2(1);
  const auto capped = core::assign_replicas(d, schedules, cfg, rng2);
  EXPECT_LE(capped.host_load[0], 2u);
}

TEST(LoadCap, ImprovesFairnessOnSyntheticNetwork) {
  auto preset = synth::scaled(synth::facebook_preset(), 0.02);
  util::Rng rng(5);
  const auto dataset = synth::generate_study_dataset(preset, rng);
  const auto model =
      onlinetime::make_model(onlinetime::ModelKind::kSporadic);
  util::Rng mrng(6);
  const auto schedules = model->schedules(dataset, mrng);

  core::AssignmentConfig cfg;
  cfg.policy = PolicyKind::kMaxAv;
  cfg.connectivity = Connectivity::kUnconRep;
  cfg.max_replicas = 3;
  util::Rng r1(7), r2(7);
  const auto free = core::assign_replicas(dataset, schedules, cfg, r1);
  cfg.load_cap = 5;
  const auto capped = core::assign_replicas(dataset, schedules, cfg, r2);

  const auto free_stats = core::load_stats(free.host_load);
  const auto capped_stats = core::load_stats(capped.host_load);
  EXPECT_LE(capped_stats.max, 5u);
  EXPECT_LE(capped_stats.gini, free_stats.gini + 1e-9);
}

// --- distribution view ---------------------------------------------------

TEST(CohortSamples, MatchesSweepMeanForDeterministicPolicy) {
  auto preset = synth::scaled(synth::facebook_preset(), 0.02);
  util::Rng rng(11);
  const auto dataset = synth::generate_study_dataset(preset, rng);
  sim::Study study(dataset, 17);
  sim::Study::Options opts;
  opts.cohort_degree = graph::most_populated_degree(dataset.graph, 4, 12);
  opts.repetitions = 1;

  const auto samples = study.cohort_samples(
      onlinetime::ModelKind::kFixedLength, {.window_hours = 8.0},
      Connectivity::kConRep, PolicyKind::kMaxAv, /*k=*/3, opts);
  ASSERT_FALSE(samples.empty());

  // Every sample respects the metric bounds.
  for (const auto& s : samples) {
    EXPECT_GE(s.availability, 0.0);
    EXPECT_LE(s.availability, 1.0 + 1e-12);
    EXPECT_LE(s.availability, s.max_availability + 1e-12);
    EXPECT_LE(s.replicas_used, 3.0);
  }

  // The sample mean equals the sweep's cohort mean at the same k (both
  // deterministic given the seed-derived schedule stream)... the sweep
  // uses a different rng stream, so only require statistical closeness.
  opts.k_max = 3;
  opts.policies = {PolicyKind::kMaxAv};
  const auto sweep = study.replication_sweep(
      onlinetime::ModelKind::kFixedLength, {.window_hours = 8.0},
      Connectivity::kConRep, opts);
  double mean = 0.0;
  for (const auto& s : samples) mean += s.availability;
  mean /= static_cast<double>(samples.size());
  EXPECT_NEAR(mean, sweep.policies[0].points.back().availability, 0.05);
}

TEST(CohortSamples, EmptyCohortThrows) {
  auto preset = synth::scaled(synth::facebook_preset(), 0.02);
  util::Rng rng(13);
  const auto dataset = synth::generate_study_dataset(preset, rng);
  sim::Study study(dataset, 19);
  sim::Study::Options opts;
  opts.cohort_degree = 9999;
  EXPECT_THROW(study.cohort_samples(onlinetime::ModelKind::kSporadic, {},
                                    Connectivity::kConRep,
                                    PolicyKind::kMaxAv, 3, opts),
               ConfigError);
}

// New policies keep the global placement invariants.
class ExtensionPolicyInvariants
    : public ::testing::TestWithParam<std::tuple<PolicyKind, Connectivity>> {};

TEST_P(ExtensionPolicyInvariants, BudgetUniquenessConnectivity) {
  const auto [kind, conn] = GetParam();
  util::Rng rng(55);
  for (int round = 0; round < 20; ++round) {
    const std::size_t n = 6;
    std::vector<DaySchedule> schedules;
    for (std::size_t i = 0; i < n; ++i) {
      const Seconds start = rng.range(0, 20) * kH;
      const Seconds len = rng.range(1, 4) * kH;
      const interval::Interval iv{start, start + len};
      schedules.push_back(DaySchedule::project({&iv, 1}));
    }
    std::vector<graph::UserId> candidates;
    for (graph::UserId c = 1; c < n; ++c) candidates.push_back(c);
    trace::ActivityTrace empty_trace(n, {});

    placement::PlacementContext ctx;
    ctx.user = 0;
    ctx.candidates = candidates;
    ctx.schedules = schedules;
    ctx.trace = &empty_trace;
    ctx.connectivity = conn;
    ctx.max_replicas = 3;
    const auto policy = placement::make_policy(kind);
    const auto r = policy->select(ctx, rng);

    EXPECT_LE(r.size(), 3u);
    std::vector<graph::UserId> sorted(r);
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(std::unique(sorted.begin(), sorted.end()), sorted.end());
    if (conn == Connectivity::kConRep) {
      DaySchedule grown = schedules[0];
      for (auto host : r) {
        if (!grown.empty()) {
          EXPECT_TRUE(schedules[host].intersects(grown));
        }
        grown = grown.unite(schedules[host]);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    NewPolicies, ExtensionPolicyInvariants,
    ::testing::Combine(::testing::Values(PolicyKind::kCoreGroup,
                                         PolicyKind::kHybrid),
                       ::testing::Values(Connectivity::kConRep,
                                         Connectivity::kUnconRep)));

}  // namespace
}  // namespace dosn
