// Unit tests for the DOSN core: version vectors, profiles (eventual
// consistency), and the network-wide replica manager.
#include <gtest/gtest.h>

#include "core/profile.hpp"
#include "core/replica_manager.hpp"
#include "core/version_vector.hpp"
#include "graph/social_graph.hpp"
#include "util/error.hpp"

namespace dosn::core {
namespace {

constexpr interval::Seconds kH = 3600;

TEST(VersionVector, EmptyIsZeroEverywhere) {
  VersionVector v;
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.seq_of(7), 0u);
}

TEST(VersionVector, AdvanceIsMonotone) {
  VersionVector v;
  v.advance(1, 5);
  v.advance(1, 3);  // lowering ignored
  EXPECT_EQ(v.seq_of(1), 5u);
  v.advance(1, 9);
  EXPECT_EQ(v.seq_of(1), 9u);
  v.advance(2, 0);  // zero ignored
  EXPECT_EQ(v.authors(), 1u);
}

TEST(VersionVector, MergeIsPointwiseMax) {
  VersionVector a, b;
  a.advance(1, 5);
  a.advance(2, 1);
  b.advance(1, 3);
  b.advance(3, 7);
  a.merge(b);
  EXPECT_EQ(a.seq_of(1), 5u);
  EXPECT_EQ(a.seq_of(2), 1u);
  EXPECT_EQ(a.seq_of(3), 7u);
}

TEST(VersionVector, CompareOrderings) {
  VersionVector a, b;
  EXPECT_EQ(a.compare(b), Ordering::kEqual);
  a.advance(1, 2);
  EXPECT_EQ(a.compare(b), Ordering::kAfter);
  EXPECT_EQ(b.compare(a), Ordering::kBefore);
  b.advance(2, 1);
  EXPECT_EQ(a.compare(b), Ordering::kConcurrent);
  b.advance(1, 2);
  a.advance(2, 1);
  EXPECT_EQ(a.compare(b), Ordering::kEqual);
}

TEST(VersionVector, IncludesIsPartialOrder) {
  VersionVector a, b;
  a.advance(1, 3);
  a.advance(2, 2);
  b.advance(1, 2);
  EXPECT_TRUE(a.includes(b));
  EXPECT_FALSE(b.includes(a));
  EXPECT_TRUE(a.includes(a));
}

TEST(VersionVector, ToString) {
  VersionVector v;
  v.advance(2, 3);
  v.advance(1, 1);
  EXPECT_EQ(v.to_string(), "{1:1 2:3}");
}

TEST(Profile, AppendAssignsSequentialIds) {
  Profile p(0);
  const auto& first = p.append(0, 100, "hello");
  EXPECT_EQ(first.id, (PostId{0, 1}));
  const auto& second = p.append(0, 200, "again");
  EXPECT_EQ(second.id, (PostId{0, 2}));
  EXPECT_EQ(p.size(), 2u);
  EXPECT_EQ(p.version().seq_of(0), 2u);
}

TEST(Profile, PostsOrderedForDisplay) {
  Profile p(0);
  p.append(1, 300, "late");
  p.append(2, 100, "early");
  p.append(1, 200, "middle");
  ASSERT_EQ(p.size(), 3u);
  EXPECT_EQ(p.posts()[0].timestamp, 100);
  EXPECT_EQ(p.posts()[1].timestamp, 200);
  EXPECT_EQ(p.posts()[2].timestamp, 300);
}

TEST(Profile, InsertIgnoresDuplicates) {
  Profile p(0);
  Post post{{1, 1}, 50, "x"};
  EXPECT_TRUE(p.insert(post));
  EXPECT_FALSE(p.insert(post));
  EXPECT_EQ(p.size(), 1u);
}

TEST(Profile, InsertRejectsZeroSeq) {
  Profile p(0);
  EXPECT_THROW(p.insert(Post{{1, 0}, 50, "x"}), ConfigError);
}

TEST(Profile, FindAndContains) {
  Profile p(0);
  p.append(3, 10, "a");
  EXPECT_TRUE(p.contains(PostId{3, 1}));
  EXPECT_FALSE(p.contains(PostId{3, 2}));
  const auto found = p.find(PostId{3, 1});
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(found->body, "a");
}

TEST(Profile, MergeIsIdempotentCommutativeAssociative) {
  auto make = [](UserId author, int n, interval::Seconds base) {
    Profile p(0);
    for (int i = 0; i < n; ++i)
      p.append(author, base + i, "post");
    return p;
  };
  const auto a = make(1, 3, 100);
  const auto b = make(2, 2, 50);
  const auto c = make(3, 4, 200);

  // Commutative.
  Profile ab = a;
  ab.merge(b);
  Profile ba = b;
  ba.merge(a);
  EXPECT_EQ(ab.posts(), ba.posts());
  EXPECT_EQ(ab.version(), ba.version());

  // Idempotent.
  Profile aa = a;
  EXPECT_EQ(aa.merge(a), 0u);
  EXPECT_EQ(aa.posts(), a.posts());

  // Associative.
  Profile ab_c = ab;
  ab_c.merge(c);
  Profile bc = b;
  bc.merge(c);
  Profile a_bc = a;
  a_bc.merge(bc);
  EXPECT_EQ(ab_c.posts(), a_bc.posts());
}

TEST(Profile, MergeCountsOnlyNewPosts) {
  Profile a(0), b(0);
  a.append(1, 10, "x");
  b.merge(a);
  EXPECT_EQ(b.size(), 1u);
  a.append(1, 20, "y");
  EXPECT_EQ(b.merge(a), 1u);
}

TEST(Profile, MissingForShipsExactlyTheGap) {
  Profile a(0);
  for (int i = 0; i < 5; ++i) a.append(1, 10 * i, "p");
  VersionVector have;
  have.advance(1, 2);
  const auto missing = a.missing_for(have);
  ASSERT_EQ(missing.size(), 3u);
  for (const auto& post : missing) EXPECT_GT(post.id.seq, 2u);

  // Applying the payload converges the replica.
  Profile b(0);
  Post p1{{1, 1}, 0, "p"}, p2{{1, 2}, 10, "p"};
  b.insert(p1);
  b.insert(p2);
  for (const auto& post : missing) b.insert(post);
  EXPECT_EQ(b.posts(), a.posts());
  EXPECT_EQ(b.version(), a.version());
}

TEST(Profile, WallForEnforcesVisibility) {
  Profile p(0);
  Post pub{{1, 1}, 10, "public post", Visibility::kPublic};
  Post priv{{1, 2}, 20, "friends only", Visibility::kFriendsOnly};
  p.insert(pub);
  p.insert(priv);

  // Owner and friends see everything.
  EXPECT_EQ(p.wall_for(0, false).size(), 2u);
  EXPECT_EQ(p.wall_for(7, true).size(), 2u);
  // Strangers see only public posts.
  const auto stranger_view = p.wall_for(7, false);
  ASSERT_EQ(stranger_view.size(), 1u);
  EXPECT_EQ(stranger_view[0].body, "public post");
}

TEST(Profile, VisibilitySurvivesMerge) {
  Profile a(0), b(0);
  a.insert(Post{{1, 1}, 10, "secret", Visibility::kFriendsOnly});
  b.merge(a);
  EXPECT_EQ(b.wall_for(9, false).size(), 0u);
  EXPECT_EQ(b.wall_for(9, true).size(), 1u);
}

TEST(Profile, DefaultVisibilityIsFriendsOnly) {
  Profile p(0);
  p.append(1, 10, "wall post");
  EXPECT_TRUE(p.wall_for(9, false).empty());
}

// --- replica manager ---------------------------------------------------

trace::Dataset line_dataset() {
  // 0-1-2-3 path; everyone online in staggered overlapping windows.
  graph::SocialGraphBuilder b(graph::GraphKind::kUndirected, 4);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(2, 3);
  trace::Dataset d;
  d.name = "line";
  d.graph = std::move(b).build();
  d.trace = trace::ActivityTrace(4, {{1, 0, 9 * kH}, {2, 1, 10 * kH}});
  return d;
}

std::vector<DaySchedule> staggered_schedules() {
  std::vector<DaySchedule> s;
  for (int i = 0; i < 4; ++i)
    s.push_back(DaySchedule(interval::IntervalSet::single(
        (8 + i) * kH, (11 + i) * kH)));
  return s;
}

TEST(ReplicaManager, AssignsForAllUsersByDefault) {
  const auto d = line_dataset();
  const auto schedules = staggered_schedules();
  AssignmentConfig cfg;
  cfg.max_replicas = 2;
  util::Rng rng(1);
  const auto a = assign_replicas(d, schedules, cfg, rng);
  EXPECT_EQ(a.users.size(), 4u);
  EXPECT_EQ(a.replicas.size(), 4u);
  EXPECT_EQ(a.host_load.size(), 4u);
  // Every selected host must be a contact of the owner.
  for (std::size_t i = 0; i < a.users.size(); ++i)
    for (graph::UserId host : a.replicas[i])
      EXPECT_TRUE(d.graph.has_edge(a.users[i], host));
}

TEST(ReplicaManager, CohortRestrictsUsers) {
  const auto d = line_dataset();
  const auto schedules = staggered_schedules();
  AssignmentConfig cfg;
  cfg.max_replicas = 1;
  util::Rng rng(1);
  const std::vector<graph::UserId> cohort{1, 2};
  const auto a = assign_replicas(d, schedules, cfg, rng, cohort);
  EXPECT_EQ(a.users, cohort);
  EXPECT_EQ(a.replicas.size(), 2u);
}

TEST(ReplicaManager, HostLoadCountsPlacements) {
  const auto d = line_dataset();
  const auto schedules = staggered_schedules();
  AssignmentConfig cfg;
  cfg.max_replicas = 3;
  util::Rng rng(1);
  const auto a = assign_replicas(d, schedules, cfg, rng);
  std::size_t total_load = 0, total_replicas = 0;
  for (std::size_t load : a.host_load) total_load += load;
  for (const auto& r : a.replicas) total_replicas += r.size();
  EXPECT_EQ(total_load, total_replicas);
  EXPECT_GT(total_replicas, 0u);
  EXPECT_GT(a.average_replication_degree(), 0.0);
}

TEST(ReplicaManager, ScheduleCountValidated) {
  const auto d = line_dataset();
  AssignmentConfig cfg;
  util::Rng rng(1);
  std::vector<DaySchedule> wrong(2);
  EXPECT_THROW(assign_replicas(d, wrong, cfg, rng), ConfigError);
}

TEST(LoadStats, UniformLoadHasZeroGini) {
  const std::vector<std::size_t> even{3, 3, 3, 3};
  const auto s = load_stats(even);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_EQ(s.max, 3u);
  EXPECT_NEAR(s.gini, 0.0, 1e-9);
}

TEST(LoadStats, ConcentratedLoadNearOne) {
  const std::vector<std::size_t> skewed{0, 0, 0, 0, 0, 0, 0, 0, 0, 10};
  const auto s = load_stats(skewed);
  EXPECT_GT(s.gini, 0.85);
  EXPECT_EQ(s.max, 10u);
}

TEST(LoadStats, EmptyAndZeroSafe) {
  EXPECT_DOUBLE_EQ(load_stats({}).gini, 0.0);
  const std::vector<std::size_t> zeros{0, 0};
  EXPECT_DOUBLE_EQ(load_stats(zeros).gini, 0.0);
}

}  // namespace
}  // namespace dosn::core
