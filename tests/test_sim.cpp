// Tests for the study driver: per-user evaluation and the three sweeps.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <span>

#include "graph/degree_stats.hpp"
#include "obs/obs.hpp"
#include "sim/study.hpp"
#include "synth/presets.hpp"
#include "util/error.hpp"

namespace dosn::sim {
namespace {

constexpr interval::Seconds kH = 3600;

using onlinetime::ModelKind;
using onlinetime::ModelParams;
using placement::Connectivity;
using placement::PolicyKind;

DaySchedule window(interval::Seconds start_h, interval::Seconds end_h) {
  return DaySchedule(interval::IntervalSet::single(start_h * kH, end_h * kH));
}

trace::Dataset tiny_dataset() {
  graph::SocialGraphBuilder b(graph::GraphKind::kUndirected, 4);
  b.add_edge(0, 1);
  b.add_edge(0, 2);
  b.add_edge(0, 3);
  trace::Dataset d;
  d.name = "tiny";
  d.graph = std::move(b).build();
  d.trace = trace::ActivityTrace(
      4, {{1, 0, 9 * kH}, {2, 0, 13 * kH}, {1, 0, 10 * kH}});
  return d;
}

TEST(EvaluateUser, MetricsForKnownConfiguration) {
  const auto d = tiny_dataset();
  // Owner 08-10; friends: 1: 09-13, 2: 12-16, 3: never.
  std::vector<DaySchedule> schedules{window(8, 10), window(9, 13),
                                     window(12, 16), DaySchedule{}};
  const std::vector<graph::UserId> replicas{1, 2};
  const auto m =
      evaluate_user(d, schedules, 0, replicas, Connectivity::kConRep);

  // Profile union: 08-16 = 8h.
  EXPECT_DOUBLE_EQ(m.availability, 8.0 / 24.0);
  // Max achievable equals that (friend 3 adds nothing).
  EXPECT_DOUBLE_EQ(m.max_availability, 8.0 / 24.0);
  // Demand union: 09-16; profile covers all of it.
  EXPECT_DOUBLE_EQ(m.aod_time, 1.0);
  // Activities at 09:00, 10:00, 13:00 all inside the profile schedule.
  EXPECT_DOUBLE_EQ(m.aod_activity, 1.0);
  EXPECT_DOUBLE_EQ(m.replicas_used, 2.0);
  EXPECT_GT(m.delay_actual_h, 0.0);
}

TEST(EvaluateUser, NoReplicasMeansOwnerOnly) {
  const auto d = tiny_dataset();
  std::vector<DaySchedule> schedules{window(8, 10), window(9, 13),
                                     window(12, 16), DaySchedule{}};
  const auto m = evaluate_user(d, schedules, 0, {}, Connectivity::kConRep);
  EXPECT_DOUBLE_EQ(m.availability, 2.0 / 24.0);
  EXPECT_DOUBLE_EQ(m.delay_actual_h, 0.0);
  EXPECT_DOUBLE_EQ(m.replicas_used, 0.0);
}

TEST(EvaluateUser, ValidatesScheduleCount) {
  const auto d = tiny_dataset();
  std::vector<DaySchedule> wrong(2);
  EXPECT_THROW(evaluate_user(d, wrong, 0, {}, Connectivity::kConRep),
               ConfigError);
}

TEST(MetricEnum, NamesAndExtraction) {
  CohortMetrics m;
  m.availability = 0.5;
  m.delay_actual_h = 7.0;
  EXPECT_DOUBLE_EQ(metric_value(m, Metric::kAvailability), 0.5);
  EXPECT_DOUBLE_EQ(metric_value(m, Metric::kDelayActualH), 7.0);
  EXPECT_EQ(to_string(Metric::kAvailability), "availability");
  EXPECT_EQ(to_string(Metric::kAodTime), "availability-on-demand-time");
}

class StudySweeps : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto preset = synth::scaled(synth::facebook_preset(), 0.02);
    util::Rng rng(42);
    dataset_ = new trace::Dataset(synth::generate_study_dataset(preset, rng));
    // Pick a well-populated cohort degree for the small dataset.
    cohort_degree_ = graph::most_populated_degree(dataset_->graph, 4, 12);
  }
  static void TearDownTestSuite() {
    delete dataset_;
    dataset_ = nullptr;
  }

  static Study::Options fast_options() {
    Study::Options o;
    o.cohort_degree = cohort_degree_;
    o.k_max = std::min<std::size_t>(cohort_degree_, 6);
    o.repetitions = 2;
    return o;
  }

  static trace::Dataset* dataset_;
  static std::size_t cohort_degree_;
};

trace::Dataset* StudySweeps::dataset_ = nullptr;
std::size_t StudySweeps::cohort_degree_ = 0;

// The study engine evaluates every replication prefix of a selection with
// evaluate_user_prefixes; it must reproduce the one-prefix-at-a-time
// reference exactly (same unite fold order, same divisions, incremental
// delay graph) — compare with EXPECT_EQ, i.e. bit-for-bit on doubles.
TEST_F(StudySweeps, EvaluateUserPrefixesMatchesPerPrefixEvaluation) {
  const auto model = onlinetime::make_model(ModelKind::kSporadic, {});
  util::Rng model_rng(99);
  const auto schedules = model->schedules(*dataset_, model_rng);

  util::Rng rng(123);
  const auto cohort_users =
      graph::users_with_degree(dataset_->graph, cohort_degree_);
  ASSERT_FALSE(cohort_users.empty());

  std::size_t checked = 0;
  for (graph::UserId u : cohort_users) {
    if (checked++ >= 4) break;
    const auto contacts = dataset_->graph.contacts(u);
    std::vector<graph::UserId> sel(contacts.begin(), contacts.end());
    std::shuffle(sel.begin(), sel.end(), rng);
    // Also exercise a truncated selection on every other user.
    if (checked % 2 == 0 && sel.size() > 2) sel.resize(sel.size() / 2);

    for (const auto connectivity :
         {Connectivity::kConRep, Connectivity::kUnconRep}) {
      const std::size_t k_max = sel.size() + 2;  // past the selection's end
      const auto rows = evaluate_user_prefixes(*dataset_, schedules, u, sel,
                                               connectivity, k_max);
      ASSERT_EQ(rows.size(), k_max + 1);
      for (std::size_t k = 0; k <= k_max; ++k) {
        const std::size_t take = std::min(k, sel.size());
        const std::span<const graph::UserId> prefix{sel.data(), take};
        const auto ref =
            evaluate_user(*dataset_, schedules, u, prefix, connectivity);
        EXPECT_EQ(rows[k].availability, ref.availability);
        EXPECT_EQ(rows[k].max_availability, ref.max_availability);
        EXPECT_EQ(rows[k].aod_time, ref.aod_time);
        EXPECT_EQ(rows[k].aod_activity, ref.aod_activity);
        EXPECT_EQ(rows[k].aod_activity_expected, ref.aod_activity_expected);
        EXPECT_EQ(rows[k].aod_activity_unexpected,
                  ref.aod_activity_unexpected);
        EXPECT_EQ(rows[k].delay_actual_h, ref.delay_actual_h);
        EXPECT_EQ(rows[k].delay_observed_h, ref.delay_observed_h);
        EXPECT_EQ(rows[k].replicas_used, ref.replicas_used);
      }
    }
  }
}

TEST_F(StudySweeps, ReplicationSweepShape) {
  Study study(*dataset_, 7);
  const auto opts = fast_options();
  const auto r = study.replication_sweep(ModelKind::kSporadic, {},
                                         Connectivity::kConRep, opts);
  ASSERT_EQ(r.policies.size(), 3u);
  ASSERT_EQ(r.xs.size(), opts.k_max + 1);
  for (const auto& curve : r.policies) {
    ASSERT_EQ(curve.points.size(), r.xs.size());
    // Availability is monotone in k for every policy (prefix property).
    for (std::size_t k = 1; k < curve.points.size(); ++k)
      EXPECT_GE(curve.points[k].availability + 1e-12,
                curve.points[k - 1].availability);
    // k = 0: owner-only availability, no replicas.
    EXPECT_DOUBLE_EQ(curve.points[0].replicas_used, 0.0);
    // Bounded metrics stay in [0, 1].
    for (const auto& p : curve.points) {
      EXPECT_GE(p.availability, 0.0);
      EXPECT_LE(p.availability, 1.0);
      EXPECT_GE(p.aod_time, 0.0);
      EXPECT_LE(p.aod_time, 1.0 + 1e-12);
      EXPECT_LE(p.availability, p.max_availability + 1e-12);
    }
  }
}

TEST_F(StudySweeps, MaxAvDominatesOnAvailability) {
  Study study(*dataset_, 11);
  const auto opts = fast_options();
  const auto r = study.replication_sweep(ModelKind::kSporadic, {},
                                         Connectivity::kConRep, opts);
  const auto& maxav = r.policies[0];
  const auto& random = r.policies[2];
  ASSERT_EQ(maxav.policy, PolicyKind::kMaxAv);
  ASSERT_EQ(random.policy, PolicyKind::kRandom);
  // At every k, greedy MaxAv availability >= Random availability
  // (cohort averages; tolerance for evaluation noise).
  for (std::size_t k = 0; k < r.xs.size(); ++k)
    EXPECT_GE(maxav.points[k].availability + 0.02,
              random.points[k].availability)
        << "k=" << k;
}

TEST_F(StudySweeps, UnconRepAvailabilityAtLeastConRep) {
  Study study(*dataset_, 13);
  const auto opts = fast_options();
  const auto con = study.replication_sweep(ModelKind::kFixedLength,
                                           {.window_hours = 2.0},
                                           Connectivity::kConRep, opts);
  const auto uncon = study.replication_sweep(ModelKind::kFixedLength,
                                             {.window_hours = 2.0},
                                             Connectivity::kUnconRep, opts);
  // MaxAv curves: unconstrained placement can only do better at the end
  // of the sweep; intermediate ks may cross slightly (greedy anomalies).
  EXPECT_GE(uncon.policies[0].points.back().availability + 1e-9,
            con.policies[0].points.back().availability);
  for (std::size_t k = 0; k < con.xs.size(); ++k)
    EXPECT_GE(uncon.policies[0].points[k].availability + 0.05,
              con.policies[0].points[k].availability);
}

TEST_F(StudySweeps, SessionLengthSweepImprovesAvailability) {
  Study study(*dataset_, 17);
  const std::vector<interval::Seconds> lengths{300, 3600, 6 * 3600};
  auto opts = fast_options();
  const auto r = study.session_length_sweep(lengths, /*k=*/3,
                                            Connectivity::kConRep, opts);
  ASSERT_EQ(r.xs.size(), 3u);
  for (const auto& curve : r.policies) {
    ASSERT_EQ(curve.points.size(), 3u);
    // Longer sessions => more availability (strongly so over this range).
    EXPECT_GT(curve.points[2].availability,
              curve.points[0].availability);
  }
}

TEST_F(StudySweeps, UserDegreeSweepAvailabilityGrows) {
  Study study(*dataset_, 19);
  auto opts = fast_options();
  const auto r = study.user_degree_sweep(6, ModelKind::kSporadic, {},
                                         Connectivity::kConRep, opts);
  ASSERT_EQ(r.xs.size(), 6u);
  // With k = degree all policies exhaust the candidate pool, so their
  // availability should be similar at each degree (paper Fig 9a).
  for (std::size_t i = 0; i < r.xs.size(); ++i) {
    const double a = r.policies[0].points[i].availability;
    const double b = r.policies[2].points[i].availability;
    if (r.policies[0].points[i].cohort_size > 0) {
      EXPECT_NEAR(a, b, 0.12) << "degree=" << r.xs[i];
    }
  }
  // Availability at degree 6 should beat degree 1 (cohort averages).
  const auto& first = r.policies[0].points.front();
  const auto& last = r.policies[0].points.back();
  if (first.cohort_size > 5 && last.cohort_size > 5) {
    EXPECT_GT(last.availability, first.availability);
  }
}

TEST_F(StudySweeps, SeriesExtractionMatchesPoints) {
  Study study(*dataset_, 23);
  auto opts = fast_options();
  const auto r = study.replication_sweep(ModelKind::kRandomLength, {},
                                         Connectivity::kConRep, opts);
  const auto series = r.series(Metric::kAvailability);
  ASSERT_EQ(series.size(), r.policies.size());
  for (std::size_t p = 0; p < series.size(); ++p) {
    EXPECT_EQ(series[p].name, r.policies[p].policy_name);
    EXPECT_EQ(series[p].x, r.xs);
    for (std::size_t k = 0; k < r.xs.size(); ++k)
      EXPECT_DOUBLE_EQ(series[p].y[k], r.policies[p].points[k].availability);
  }
}

TEST_F(StudySweeps, DeterministicForSameSeed) {
  Study a(*dataset_, 99), b(*dataset_, 99);
  auto opts = fast_options();
  opts.repetitions = 2;
  const auto ra = a.replication_sweep(ModelKind::kSporadic, {},
                                      Connectivity::kConRep, opts);
  const auto rb = b.replication_sweep(ModelKind::kSporadic, {},
                                      Connectivity::kConRep, opts);
  for (std::size_t p = 0; p < ra.policies.size(); ++p)
    for (std::size_t k = 0; k < ra.xs.size(); ++k)
      EXPECT_DOUBLE_EQ(ra.policies[p].points[k].availability,
                       rb.policies[p].points[k].availability);
}

void expect_bit_identical(const SweepResult& a, const SweepResult& b) {
  ASSERT_EQ(a.xs, b.xs);
  ASSERT_EQ(a.policies.size(), b.policies.size());
  for (std::size_t p = 0; p < a.policies.size(); ++p) {
    ASSERT_EQ(a.policies[p].points.size(), b.policies[p].points.size());
    for (std::size_t k = 0; k < a.policies[p].points.size(); ++k) {
      const auto& x = a.policies[p].points[k];
      const auto& y = b.policies[p].points[k];
      // Exact (bit-level) equality, not approximate: the parallel engine
      // merges per-user rows in cohort index order precisely so that the
      // thread count cannot perturb floating-point accumulation.
      EXPECT_EQ(x.availability, y.availability) << "p=" << p << " k=" << k;
      EXPECT_EQ(x.max_availability, y.max_availability);
      EXPECT_EQ(x.aod_time, y.aod_time);
      EXPECT_EQ(x.aod_activity, y.aod_activity);
      EXPECT_EQ(x.aod_activity_expected, y.aod_activity_expected);
      EXPECT_EQ(x.aod_activity_unexpected, y.aod_activity_unexpected);
      EXPECT_EQ(x.delay_actual_h, y.delay_actual_h);
      EXPECT_EQ(x.delay_observed_h, y.delay_observed_h);
      EXPECT_EQ(x.replicas_used, y.replicas_used);
      EXPECT_EQ(x.cohort_size, y.cohort_size);
    }
  }
}

TEST_F(StudySweeps, ReplicationSweepBitIdenticalAcrossThreadCounts) {
  Study study(*dataset_, 101);
  auto opts = fast_options();
  opts.threads = 1;
  const auto serial = study.replication_sweep(ModelKind::kSporadic, {},
                                              Connectivity::kConRep, opts);
  for (std::size_t threads : {4u, 8u}) {
    opts.threads = threads;
    const auto parallel = study.replication_sweep(
        ModelKind::kSporadic, {}, Connectivity::kConRep, opts);
    expect_bit_identical(serial, parallel);
  }
}

TEST_F(StudySweeps, RandomizedSweepBitIdenticalAcrossThreadCounts) {
  // Random placement draws from per-user RNG streams, so even the
  // randomized policies must not depend on the thread count.
  Study study(*dataset_, 103);
  auto opts = fast_options();
  opts.policies = {PolicyKind::kRandom};
  opts.threads = 1;
  const auto serial = study.replication_sweep(ModelKind::kRandomLength, {},
                                              Connectivity::kConRep, opts);
  opts.threads = 8;
  const auto parallel = study.replication_sweep(ModelKind::kRandomLength, {},
                                                Connectivity::kConRep, opts);
  expect_bit_identical(serial, parallel);
}

TEST_F(StudySweeps, SessionAndDegreeSweepsBitIdenticalAcrossThreadCounts) {
  Study study(*dataset_, 107);
  auto opts = fast_options();
  const std::vector<interval::Seconds> lengths{600, 3600};

  opts.threads = 1;
  const auto session_serial =
      study.session_length_sweep(lengths, 3, Connectivity::kConRep, opts);
  const auto degree_serial = study.user_degree_sweep(
      5, ModelKind::kSporadic, {}, Connectivity::kConRep, opts);

  opts.threads = 4;
  const auto session_parallel =
      study.session_length_sweep(lengths, 3, Connectivity::kConRep, opts);
  const auto degree_parallel = study.user_degree_sweep(
      5, ModelKind::kSporadic, {}, Connectivity::kConRep, opts);

  expect_bit_identical(session_serial, session_parallel);
  expect_bit_identical(degree_serial, degree_parallel);
}

TEST_F(StudySweeps, CohortSamplesIdenticalAcrossThreadCounts) {
  Study study(*dataset_, 109);
  auto opts = fast_options();
  opts.threads = 1;
  const auto serial = study.cohort_samples(
      ModelKind::kSporadic, {}, Connectivity::kConRep, PolicyKind::kRandom,
      3, opts);
  opts.threads = 8;
  const auto parallel = study.cohort_samples(
      ModelKind::kSporadic, {}, Connectivity::kConRep, PolicyKind::kRandom,
      3, opts);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].availability, parallel[i].availability) << i;
    EXPECT_EQ(serial[i].replicas_used, parallel[i].replicas_used) << i;
    EXPECT_EQ(serial[i].delay_actual_h, parallel[i].delay_actual_h) << i;
  }
}

TEST(SweepStream, NoCollisionsWhereAdditiveSchemeAliased) {
  // Regression: the old additive derivation `xi*7919 + p*131 + r` made
  // (xi=0, p=1, r=0) and (xi=0, p=0, r=131) share a stream, correlating
  // "independent" repetitions. The nested mix64 scheme must keep every
  // cell of a realistic sweep grid distinct.
  constexpr std::uint64_t kSeed = 42, kTag = 0x3e55;
  EXPECT_NE(sweep_stream(kSeed, kTag, 0, 1, 0),
            sweep_stream(kSeed, kTag, 0, 0, 131));
  EXPECT_NE(sweep_stream(kSeed, kTag, 1, 0, 0),
            sweep_stream(kSeed, kTag, 0, 0, 7919));

  std::set<std::uint64_t> seen;
  for (std::uint64_t x = 0; x < 40; ++x)
    for (std::uint64_t p = 0; p < 6; ++p)
      for (std::uint64_t r = 0; r < 10; ++r)
        seen.insert(sweep_stream(kSeed, kTag, x, p, r));
  EXPECT_EQ(seen.size(), 40u * 6u * 10u);

  // Distinct sweep tags and seeds derive distinct streams too.
  EXPECT_NE(sweep_stream(kSeed, 0x3e55, 2, 1, 0),
            sweep_stream(kSeed, 0xde60, 2, 1, 0));
  EXPECT_NE(sweep_stream(1, kTag, 2, 1, 0), sweep_stream(2, kTag, 2, 1, 0));
}

TEST_F(StudySweeps, CohortDegreeRespected) {
  Study study(*dataset_, 29);
  const auto cohort = study.cohort(cohort_degree_);
  EXPECT_FALSE(cohort.empty());
  for (graph::UserId u : cohort)
    EXPECT_EQ(dataset_->graph.degree(u), cohort_degree_);
}

net::FaultPlan strong_fault_plan() {
  net::FaultPlan plan;
  plan.seed = 0xbad5eed;
  plan.session_no_show = 0.4;
  plan.session_truncate = 0.6;
  plan.truncate_max_fraction = 0.8;
  return plan;
}

// Zero intensity feeds the evaluation the ideal schedules, so the sweep's
// first column must reproduce the replication_sweep point at k bit for
// bit for a deterministic policy (same model stream seeds, MaxAv draws
// nothing from its placement stream).
TEST_F(StudySweeps, ResilienceSweepZeroIntensityMatchesReplicationSweep) {
  Study study(*dataset_, 211);
  auto opts = fast_options();
  opts.policies = {PolicyKind::kMaxAv};
  const std::size_t k = 3;
  opts.k_max = k;
  const auto baseline = study.replication_sweep(
      ModelKind::kSporadic, {}, Connectivity::kConRep, opts);

  const std::vector<double> intensities{0.0, 1.0};
  const auto r = study.resilience_sweep(ModelKind::kSporadic, {},
                                        Connectivity::kConRep,
                                        strong_fault_plan(), intensities, k,
                                        opts);
  ASSERT_EQ(r.xs, intensities);
  ASSERT_EQ(r.policies.size(), 1u);
  const auto& at_zero = r.policies[0].points[0];
  const auto& ref = baseline.policies[0].points[k];
  EXPECT_EQ(at_zero.availability, ref.availability);
  EXPECT_EQ(at_zero.aod_time, ref.aod_time);
  EXPECT_EQ(at_zero.aod_activity, ref.aod_activity);
  EXPECT_EQ(at_zero.delay_actual_h, ref.delay_actual_h);
  EXPECT_EQ(at_zero.delay_observed_h, ref.delay_observed_h);
  EXPECT_EQ(at_zero.replicas_used, ref.replicas_used);
}

// Nested fault realizations: every fault present at f1 is present at
// f2 >= f1, so cohort availability degrades monotonically along the
// intensity axis — exactly, not merely in expectation.
TEST_F(StudySweeps, ResilienceSweepAvailabilityMonotone) {
  Study study(*dataset_, 223);
  auto opts = fast_options();
  const std::vector<double> intensities{0.0, 0.25, 0.5, 0.75, 1.0};
  const auto r = study.resilience_sweep(ModelKind::kSporadic, {},
                                        Connectivity::kConRep,
                                        strong_fault_plan(), intensities,
                                        /*k=*/3, opts);
  for (const auto& curve : r.policies) {
    ASSERT_EQ(curve.points.size(), intensities.size());
    for (std::size_t i = 1; i < curve.points.size(); ++i)
      EXPECT_LE(curve.points[i].availability,
                curve.points[i - 1].availability)
          << curve.policy_name << " at intensity " << intensities[i];
    // A plan this aggressive must actually bite.
    EXPECT_LT(curve.points.back().availability,
              curve.points.front().availability)
        << curve.policy_name;
  }
}

TEST_F(StudySweeps, ResilienceSweepBitIdenticalAcrossThreadsAndObs) {
  Study study(*dataset_, 227);
  auto opts = fast_options();
  const std::vector<double> intensities{0.0, 0.5, 1.0};
  const auto run = [&] {
    return study.resilience_sweep(ModelKind::kRandomLength, {},
                                  Connectivity::kConRep,
                                  strong_fault_plan(), intensities,
                                  /*k=*/3, opts);
  };
  opts.threads = 1;
  const auto serial = run();
  opts.threads = 8;
  const auto parallel = run();
  expect_bit_identical(serial, parallel);

  // Observability must never perturb results: counters are side channels.
  const bool was_enabled = obs::enabled();
  obs::set_enabled(!was_enabled);
  const auto flipped = run();
  obs::set_enabled(was_enabled);
  expect_bit_identical(serial, flipped);
}

TEST_F(StudySweeps, ResilienceSweepValidatesInputs) {
  Study study(*dataset_, 229);
  auto opts = fast_options();
  const std::vector<double> none;
  EXPECT_THROW(study.resilience_sweep(ModelKind::kSporadic, {},
                                      Connectivity::kConRep,
                                      strong_fault_plan(), none, 3, opts),
               ConfigError);
  const std::vector<double> out_of_range{0.0, 1.5};
  EXPECT_THROW(study.resilience_sweep(ModelKind::kSporadic, {},
                                      Connectivity::kConRep,
                                      strong_fault_plan(), out_of_range, 3,
                                      opts),
               ConfigError);
  net::FaultPlan bad = strong_fault_plan();
  bad.session_no_show = 1.5;
  const std::vector<double> ok{0.0, 1.0};
  EXPECT_THROW(study.resilience_sweep(ModelKind::kSporadic, {},
                                      Connectivity::kConRep, bad, ok, 3,
                                      opts),
               ConfigError);
}

TEST(StudyErrors, EmptyCohortThrows) {
  auto d = tiny_dataset();
  Study study(d, 1);
  Study::Options opts;
  opts.cohort_degree = 99;
  EXPECT_THROW(study.replication_sweep(ModelKind::kSporadic, {},
                                       Connectivity::kConRep, opts),
               ConfigError);
}

}  // namespace
}  // namespace dosn::sim
