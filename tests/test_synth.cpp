// Tests for the synthetic dataset generators: structural properties and
// calibration against the paper's post-filter statistics.
#include <gtest/gtest.h>

#include <algorithm>

#include "graph/degree_stats.hpp"
#include "interval/day_schedule.hpp"
#include "synth/presets.hpp"
#include "util/error.hpp"

namespace dosn::synth {
namespace {

using graph::GraphKind;

TEST(GraphGen, ProducesRequestedUserCount) {
  util::Rng rng(1);
  GraphGenConfig cfg;
  cfg.users = 500;
  cfg.avg_degree = 8.0;
  auto g = generate_power_law_graph(cfg, GraphKind::kUndirected, rng);
  EXPECT_EQ(g.num_users(), 500u);
}

TEST(GraphGen, AverageDegreeNearTarget) {
  util::Rng rng(2);
  GraphGenConfig cfg;
  cfg.users = 4000;
  cfg.avg_degree = 12.0;
  auto g = generate_power_law_graph(cfg, GraphKind::kUndirected, rng);
  EXPECT_NEAR(g.average_degree(), 12.0, 2.5);
}

TEST(GraphGen, DirectedFollowerDegreeNearTarget) {
  util::Rng rng(3);
  GraphGenConfig cfg;
  cfg.users = 4000;
  cfg.avg_degree = 10.0;
  auto g = generate_power_law_graph(cfg, GraphKind::kDirected, rng);
  EXPECT_EQ(g.kind(), GraphKind::kDirected);
  EXPECT_NEAR(g.average_degree(), 10.0, 2.5);  // contacts = followers
}

TEST(GraphGen, HeavyTailPresent) {
  util::Rng rng(4);
  GraphGenConfig cfg;
  cfg.users = 4000;
  cfg.avg_degree = 10.0;
  cfg.weight_alpha = 1.6;
  auto g = generate_power_law_graph(cfg, GraphKind::kUndirected, rng);
  std::size_t max_degree = 0;
  for (graph::UserId u = 0; u < g.num_users(); ++u)
    max_degree = std::max(max_degree, g.degree(u));
  // Power-law graphs have hubs far above the mean.
  EXPECT_GT(max_degree, 60u);
  // And many low-degree users.
  const auto hist = graph::degree_histogram(g);
  std::size_t low = 0;
  for (std::size_t d = 0; d <= 5 && d < hist.size(); ++d) low += hist[d];
  EXPECT_GT(low, g.num_users() / 5);
}

TEST(GraphGen, DeterministicForSeed) {
  GraphGenConfig cfg;
  cfg.users = 300;
  cfg.avg_degree = 6.0;
  util::Rng r1(77), r2(77);
  auto a = generate_power_law_graph(cfg, GraphKind::kUndirected, r1);
  auto b = generate_power_law_graph(cfg, GraphKind::kUndirected, r2);
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (graph::UserId u = 0; u < a.num_users(); ++u) {
    const auto na = a.contacts(u);
    const auto nb = b.contacts(u);
    ASSERT_EQ(std::vector<graph::UserId>(na.begin(), na.end()),
              std::vector<graph::UserId>(nb.begin(), nb.end()));
  }
}

TEST(GraphGen, RejectsBadConfig) {
  util::Rng rng(5);
  GraphGenConfig cfg;
  cfg.users = 1;
  EXPECT_THROW(generate_power_law_graph(cfg, GraphKind::kUndirected, rng),
               ConfigError);
  cfg.users = 10;
  cfg.weight_alpha = 0.9;  // infinite-mean tail
  EXPECT_THROW(generate_power_law_graph(cfg, GraphKind::kUndirected, rng),
               ConfigError);
}

trace::Dataset small_raw(std::uint64_t seed) {
  auto preset = scaled(facebook_preset(), 0.02);  // ~1200 users
  util::Rng rng(seed);
  return generate_raw(preset, rng);
}

TEST(ActivityGen, MeanVolumeNearTarget) {
  auto d = small_raw(6);
  const auto preset = facebook_preset();
  EXPECT_NEAR(d.trace.average_activities_per_user(),
              preset.activity.mean_activities,
              preset.activity.mean_activities * 0.35);
}

TEST(ActivityGen, ActivitiesTargetNeighboursOrSelf) {
  auto d = small_raw(7);
  for (const auto& a : d.trace.all()) {
    if (a.creator == a.receiver) continue;
    EXPECT_TRUE(d.graph.has_edge(a.creator, a.receiver))
        << a.creator << " -> " << a.receiver;
  }
}

TEST(ActivityGen, TimestampsWithinTraceWindow) {
  auto d = small_raw(8);
  const auto preset = facebook_preset();
  const auto start = preset.activity.start_timestamp;
  const auto end = start + static_cast<trace::Seconds>(
                               preset.activity.num_days) *
                               interval::kDaySeconds;
  EXPECT_GE(d.trace.min_timestamp(), start);
  EXPECT_LT(d.trace.max_timestamp(), end);
}

TEST(ActivityGen, DiurnalNotUniform) {
  // Time-of-day histogram should show day/night structure: the busiest
  // 6-hour block must far exceed the quietest.
  auto d = small_raw(9);
  std::vector<double> by_hour(24, 0.0);
  for (const auto& a : d.trace.all())
    ++by_hour[static_cast<std::size_t>(
        interval::time_of_day(a.timestamp) / 3600)];
  double best = 0, worst = 1e18;
  for (int h = 0; h < 24; ++h) {
    double block = 0;
    for (int i = 0; i < 6; ++i) block += by_hour[(h + i) % 24];
    best = std::max(best, block);
    worst = std::min(worst, block);
  }
  EXPECT_GT(best, worst * 2.0);
}

TEST(Presets, ScaledAdjustsUsersOnly) {
  auto p = facebook_preset();
  auto s = scaled(p, 0.1);
  EXPECT_EQ(s.graph.users, p.graph.users / 10);
  EXPECT_EQ(s.activity.mean_activities, p.activity.mean_activities);
  EXPECT_THROW(scaled(p, 0.0), ConfigError);
}

TEST(Presets, StudyPipelineFiltersByActivity) {
  auto preset = scaled(facebook_preset(), 0.02);
  util::Rng rng(10);
  const auto raw = generate_raw(preset, rng);

  // Run the pipeline manually to track the id mappings: every survivor
  // must have created >= 10 activities in the RAW trace (the filter is a
  // single pass — within the filtered trace counts can be lower because
  // activities vanish with dropped partners) and must keep a contact.
  std::vector<graph::UserId> old_after_activity;
  const auto filtered = trace::filter_min_activity(
      raw, preset.min_created_activities, &old_after_activity);
  std::vector<graph::UserId> old_after_isolated;
  const auto study = trace::filter_isolated(filtered, &old_after_isolated);

  EXPECT_GT(study.num_users(), 0u);
  EXPECT_LT(study.num_users(), raw.num_users());
  for (graph::UserId u = 0; u < study.num_users(); ++u) {
    const graph::UserId raw_id = old_after_activity[old_after_isolated[u]];
    EXPECT_GE(raw.trace.activities_created(raw_id),
              preset.min_created_activities);
    EXPECT_GT(study.graph.degree(u), 0u);  // isolated users dropped
  }
}

// Calibration against the paper's post-filter statistics (Sec IV-A). The
// generator is random, so bands are generous; what matters is the regime.
TEST(Presets, FacebookCalibrationRegime) {
  auto preset = scaled(facebook_preset(), 0.25);  // 15k users pre-filter
  util::Rng rng(11);
  auto study = generate_study_dataset(preset, rng);
  const auto s = trace::stats_of(study);
  // Paper (full scale): 13 884 users of 63 731 => ~20% survive.
  EXPECT_GT(s.users, preset.graph.users / 12);
  EXPECT_LT(s.users, preset.graph.users / 2);
  // Paper: filtered average degree 41 (quarter-scale graph keeps the
  // degree regime; generous band).
  EXPECT_GT(s.average_degree, 15.0);
  EXPECT_LT(s.average_degree, 90.0);
  // Paper: ~50 activities per user after filtering.
  EXPECT_GT(s.average_activities, 25.0);
  EXPECT_LT(s.average_activities, 110.0);
}

TEST(Presets, FacebookDegree10CohortPopulated) {
  auto preset = scaled(facebook_preset(), 0.25);
  util::Rng rng(12);
  auto study = generate_study_dataset(preset, rng);
  const auto cohort = graph::users_with_degree(study.graph, 10);
  // Paper has ~300 degree-10 users at full scale; quarter scale should
  // still give a usable cohort.
  EXPECT_GT(cohort.size(), 20u);
}

// The chunked activity generator must emit, for ANY chunk size, exactly
// the trace the one-shot generator materializes: same activities, same
// order, same RNG consumption. This is the foundation of the million-user
// path (it streams chunks instead of holding the trace).
TEST(ChunkedGeneration, BitIdenticalToMaterializedForAnyChunkSize) {
  ScaleOptions opts;
  opts.users = 400;
  const auto preset = scale_preset(opts);

  util::Rng graph_rng(31);
  const auto graph =
      generate_power_law_graph(preset.graph, preset.kind, graph_rng);

  util::Rng ref_rng(77);
  const auto reference =
      generate_activities(graph, preset.activity, ref_rng);
  const std::uint64_t sentinel = ref_rng();  // post-generation RNG state

  for (const std::size_t chunk_users : {1, 13, 400, 1000}) {
    util::Rng rng(77);
    std::vector<trace::Activity> streamed;
    graph::UserId expected_first = 0;
    generate_activities_chunked(
        graph, preset.activity, rng, chunk_users,
        [&](graph::UserId first, graph::UserId end,
            std::span<const trace::Activity> chunk) {
          EXPECT_EQ(first, expected_first);
          EXPECT_LE(end - first, chunk_users);
          for (const auto& a : chunk) {
            EXPECT_GE(a.creator, first);
            EXPECT_LT(a.creator, end);
          }
          expected_first = end;
          streamed.insert(streamed.end(), chunk.begin(), chunk.end());
        });
    EXPECT_EQ(expected_first, graph.num_users());
    // The RNG must land in the same state (identical draw sequence).
    EXPECT_EQ(rng(), sentinel);

    const trace::ActivityTrace trace(graph.num_users(), std::move(streamed));
    ASSERT_EQ(trace.size(), reference.size()) << "chunk " << chunk_users;
    for (std::size_t i = 0; i < trace.size(); ++i) {
      EXPECT_EQ(trace.activity(static_cast<std::uint32_t>(i)).creator,
                reference.activity(static_cast<std::uint32_t>(i)).creator);
      EXPECT_EQ(trace.activity(static_cast<std::uint32_t>(i)).receiver,
                reference.activity(static_cast<std::uint32_t>(i)).receiver);
      EXPECT_EQ(trace.activity(static_cast<std::uint32_t>(i)).timestamp,
                reference.activity(static_cast<std::uint32_t>(i)).timestamp);
    }
  }
}

TEST(Presets, TwitterCalibrationRegime) {
  auto preset = scaled(twitter_preset(), 0.25);
  util::Rng rng(13);
  auto study = generate_study_dataset(preset, rng);
  EXPECT_EQ(study.graph.kind(), GraphKind::kDirected);
  const auto s = trace::stats_of(study);
  EXPECT_GT(s.users, 100u);
  // Paper: average follower count 76 post-filter.
  EXPECT_GT(s.average_degree, 20.0);
  const auto cohort = graph::users_with_degree(study.graph, 10);
  EXPECT_GT(cohort.size(), 10u);
}

}  // namespace
}  // namespace dosn::synth
