// Paper-trend regression suite: the headline findings of the paper (as
// recorded in EXPERIMENTS.md) must keep holding on a moderately sized
// synthetic dataset. These are the end-to-end guards for the reproduction;
// if a refactor changes a curve's shape, this file fails before the bench
// harnesses would reveal it.
#include <gtest/gtest.h>

#include "graph/degree_stats.hpp"
#include "sim/study.hpp"
#include "synth/presets.hpp"

namespace dosn {
namespace {

using onlinetime::ModelKind;
using placement::Connectivity;
using placement::PolicyKind;

class PaperTrends : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto preset = synth::scaled(synth::facebook_preset(), 0.05);
    util::Rng rng(20120618);
    dataset_ =
        new trace::Dataset(synth::generate_study_dataset(preset, rng));
    study_ = new sim::Study(*dataset_, 20120618);
    cohort_degree_ = graph::most_populated_degree(dataset_->graph, 6, 14);
  }
  static void TearDownTestSuite() {
    delete study_;
    delete dataset_;
  }

  static sim::Study::Options options() {
    sim::Study::Options o;
    o.cohort_degree = cohort_degree_;
    o.k_max = std::min<std::size_t>(cohort_degree_, 10);
    o.repetitions = 2;
    return o;
  }

  static trace::Dataset* dataset_;
  static sim::Study* study_;
  static std::size_t cohort_degree_;
};

trace::Dataset* PaperTrends::dataset_ = nullptr;
sim::Study* PaperTrends::study_ = nullptr;
std::size_t PaperTrends::cohort_degree_ = 0;

// Fig 3: availability rises steeply then flattens; MaxAv dominates.
TEST_F(PaperTrends, AvailabilityRisesAndFlattens) {
  const auto r = study_->replication_sweep(ModelKind::kSporadic, {},
                                           Connectivity::kConRep, options());
  const auto& maxav = r.policies[0].points;
  const std::size_t last = maxav.size() - 1;
  // Steep early growth...
  EXPECT_GT(maxav[3].availability - maxav[0].availability, 0.25);
  // ...then a flat tail (paper: "stabilizes after replication degree ~6").
  EXPECT_LT(maxav[last].availability - maxav[last - 2].availability, 0.03);
  // Policy ordering at mid-curve: MaxAv >= MostActive >= Random.
  const std::size_t mid = last / 2;
  EXPECT_GE(r.policies[0].points[mid].availability + 0.01,
            r.policies[1].points[mid].availability);
  EXPECT_GE(r.policies[1].points[mid].availability + 0.02,
            r.policies[2].points[mid].availability);
}

// Fig 3c: FixedLength(2h) availability stays very low under ConRep.
TEST_F(PaperTrends, Fixed2hStaysLow) {
  const auto r = study_->replication_sweep(ModelKind::kFixedLength,
                                           {.window_hours = 2.0},
                                           Connectivity::kConRep, options());
  EXPECT_LT(r.policies[0].points.back().availability, 0.5);
}

// Fig 5: AoD-time saturates with a handful of MaxAv replicas.
TEST_F(PaperTrends, AodTimeSaturatesEarly) {
  const auto r = study_->replication_sweep(ModelKind::kSporadic, {},
                                           Connectivity::kConRep, options());
  const auto& maxav = r.policies[0].points;
  EXPECT_GT(maxav[std::min<std::size_t>(5, maxav.size() - 1)].aod_time, 0.9);
  EXPECT_NEAR(maxav.back().aod_time, 1.0, 0.02);
}

// Fig 6: AoD-activity >= AoD-time at every k (MaxAv curve).
TEST_F(PaperTrends, AodActivityAboveAodTime) {
  const auto r = study_->replication_sweep(ModelKind::kSporadic, {},
                                           Connectivity::kConRep, options());
  for (const auto& point : r.policies[0].points)
    EXPECT_GE(point.aod_activity + 0.03, point.aod_time);
}

// Fig 7: delay increases with k; continuous models pay more than Sporadic.
// Note: per-k cohort means are only *predominantly* increasing — a newly
// added replica can act as a relay and shorten shortest paths, so small
// local dips are legitimate (the paper's own caveat: the delay increases
// "if their total non-overlapping time increases").
TEST_F(PaperTrends, DelayGrowsWithReplicationDegree) {
  const auto sporadic = study_->replication_sweep(
      ModelKind::kSporadic, {}, Connectivity::kConRep, options());
  const auto fixed8 = study_->replication_sweep(
      ModelKind::kFixedLength, {.window_hours = 8.0}, Connectivity::kConRep,
      options());
  for (const auto& curves : {sporadic.policies, fixed8.policies}) {
    for (const auto& curve : curves) {
      // Strong overall growth from k=0 (no replicas: zero delay)...
      EXPECT_GT(curve.points.back().delay_actual_h,
                curve.points.front().delay_actual_h + 5.0);
      // ...with at most small local dips.
      for (std::size_t k = 1; k < curve.points.size(); ++k)
        EXPECT_GE(curve.points[k].delay_actual_h + 1.5,
                  curve.points[k - 1].delay_actual_h);
    }
  }
  // Paper: "the delay is lower for Sporadic as compared to the other
  // online time models".
  EXPECT_LT(sporadic.policies[0].points.back().delay_actual_h,
            fixed8.policies[0].points.back().delay_actual_h);
}

// Fig 4 / Sec V-A: UnconRep achieves at least ConRep's availability.
// Greedy selections are not pointwise comparable at every intermediate k
// (a constrained first pick can set up luckier later gains), so the guard
// is: dominance at the sweep's end plus near-dominance pointwise.
TEST_F(PaperTrends, UnconRepDominatesConRep) {
  for (const double hours : {2.0, 8.0}) {
    const auto con = study_->replication_sweep(
        ModelKind::kFixedLength, {.window_hours = hours},
        Connectivity::kConRep, options());
    const auto uncon = study_->replication_sweep(
        ModelKind::kFixedLength, {.window_hours = hours},
        Connectivity::kUnconRep, options());
    EXPECT_GE(uncon.policies[0].points.back().availability + 1e-9,
              con.policies[0].points.back().availability);
    for (std::size_t k = 0; k < con.xs.size(); ++k) {
      EXPECT_GE(uncon.policies[0].points[k].availability + 0.05,
                con.policies[0].points[k].availability);
      EXPECT_LE(uncon.policies[0].points[k].delay_actual_h,
                con.policies[0].points[k].delay_actual_h + 1e-9);
    }
  }
}

// Fig 8: session length boosts availability and cuts delay (k = 3).
TEST_F(PaperTrends, SessionLengthSweepTrends) {
  const std::vector<interval::Seconds> lengths{300, 3000, 30000};
  const auto r = study_->session_length_sweep(lengths, 3,
                                              Connectivity::kConRep,
                                              options());
  const auto& maxav = r.policies[0].points;
  EXPECT_GT(maxav[2].availability, maxav[0].availability + 0.2);
  EXPECT_LT(maxav[2].delay_actual_h, maxav[0].delay_actual_h);
  // Paper: availability ~1.0 above 10^4 s.
  EXPECT_GT(maxav[2].availability, 0.95);
}

// Sec V-C: the replicas MaxAv actually uses stay well below the allowed k
// once coverage saturates (the privacy-friendly low replication degree).
TEST_F(PaperTrends, MaxAvUsesFewReplicas) {
  const auto r = study_->replication_sweep(ModelKind::kSporadic, {},
                                           Connectivity::kConRep, options());
  const auto& last = r.policies[0].points.back();
  EXPECT_LT(last.replicas_used,
            static_cast<double>(r.xs.size() - 1) - 0.5);
}

}  // namespace
}  // namespace dosn
