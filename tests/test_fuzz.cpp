// Reference-model fuzzing: the optimized data structures are checked
// against deliberately naive implementations on thousands of random
// inputs — a second, independent implementation of the same semantics.
#include <gtest/gtest.h>

#include <set>

#include "interval/day_schedule.hpp"
#include "interval/interval_set.hpp"
#include "net/event_queue.hpp"
#include "util/rng.hpp"

namespace dosn {
namespace {

using interval::DaySchedule;
using interval::Interval;
using interval::IntervalSet;
using interval::kDaySeconds;
using interval::Seconds;

/// Naive reference: a set of covered integer points on a coarse grid.
class PointSet {
 public:
  void add(Seconds start, Seconds end) {
    for (Seconds t = start; t < end; ++t) points_.insert(t);
  }
  static PointSet of(const IntervalSet& s) {
    PointSet p;
    for (const auto& iv : s.pieces()) p.add(iv.start, iv.end);
    return p;
  }
  PointSet unite(const PointSet& o) const {
    PointSet r = *this;
    r.points_.insert(o.points_.begin(), o.points_.end());
    return r;
  }
  PointSet intersect(const PointSet& o) const {
    PointSet r;
    for (Seconds t : points_)
      if (o.points_.count(t)) r.points_.insert(t);
    return r;
  }
  PointSet subtract(const PointSet& o) const {
    PointSet r;
    for (Seconds t : points_)
      if (!o.points_.count(t)) r.points_.insert(t);
    return r;
  }
  std::size_t size() const { return points_.size(); }
  bool contains(Seconds t) const { return points_.count(t) > 0; }
  bool operator==(const PointSet&) const = default;

 private:
  std::set<Seconds> points_;
};

IntervalSet random_set(util::Rng& rng, Seconds universe, int max_pieces) {
  IntervalSet s;
  const auto pieces = rng.below(static_cast<std::uint64_t>(max_pieces) + 1);
  for (std::uint64_t i = 0; i < pieces; ++i) {
    const Seconds start = rng.range(0, universe - 2);
    const Seconds len = rng.range(1, std::min<Seconds>(40, universe - start));
    s.add(start, start + len);
  }
  return s;
}

class FuzzSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzSeeds, IntervalAlgebraMatchesPointSet) {
  util::Rng rng(GetParam());
  constexpr Seconds kUniverse = 300;  // small so PointSet stays cheap
  for (int round = 0; round < 120; ++round) {
    const auto a = random_set(rng, kUniverse, 5);
    const auto b = random_set(rng, kUniverse, 5);
    const auto pa = PointSet::of(a);
    const auto pb = PointSet::of(b);

    EXPECT_EQ(PointSet::of(a.unite(b)), pa.unite(pb));
    EXPECT_EQ(PointSet::of(a.intersect(b)), pa.intersect(pb));
    EXPECT_EQ(PointSet::of(a.subtract(b)), pa.subtract(pb));
    EXPECT_EQ(static_cast<std::size_t>(a.measure()), pa.size());
    EXPECT_EQ(static_cast<std::size_t>(a.intersection_measure(b)),
              pa.intersect(pb).size());

    const Seconds probe = rng.range(0, kUniverse);
    EXPECT_EQ(a.contains(probe), pa.contains(probe));
    EXPECT_EQ(a.intersects(b), pa.intersect(pb).size() > 0);

    const Seconds lo = rng.range(0, kUniverse - 2);
    const Seconds hi = rng.range(lo + 1, kUniverse);
    EXPECT_EQ(static_cast<std::size_t>(a.measure_within(lo, hi)),
              pa.intersect(PointSet::of(IntervalSet::single(lo, hi))).size());
  }
}

TEST_P(FuzzSeeds, NextAtOrAfterMatchesScan) {
  util::Rng rng(GetParam() + 100);
  for (int round = 0; round < 100; ++round) {
    const auto a = random_set(rng, 300, 5);
    const auto pa = PointSet::of(a);
    const Seconds t = rng.range(0, 320);
    std::optional<Seconds> expected;
    for (Seconds probe = t; probe < 340; ++probe) {
      if (pa.contains(probe)) {
        expected = probe;
        break;
      }
    }
    EXPECT_EQ(a.next_at_or_after(t), expected);
  }
}

TEST_P(FuzzSeeds, WaitUntilOnlineMatchesScan) {
  util::Rng rng(GetParam() + 200);
  for (int round = 0; round < 40; ++round) {
    // Coarse schedules: pieces aligned to 10-minute slots.
    IntervalSet s;
    const auto pieces = 1 + rng.below(4);
    for (std::uint64_t i = 0; i < pieces; ++i) {
      const Seconds start = rng.range(0, 143) * 600;
      const Seconds len = rng.range(1, 6) * 600;
      s.add(start, std::min(start + len, kDaySeconds));
    }
    const DaySchedule sched(std::move(s));
    for (int probe = 0; probe < 20; ++probe) {
      const Seconds t = rng.range(0, kDaySeconds - 1);
      const auto wait = sched.wait_until_online(t);
      ASSERT_TRUE(wait.has_value());
      // The answer is an online instant...
      EXPECT_TRUE(sched.online_at(t + *wait));
      // ...and nothing earlier is (scan at minute granularity; schedule
      // boundaries are 10-minute aligned so a minute grid cannot miss an
      // online stretch).
      for (Seconds w = 0; w < *wait; w += 60)
        EXPECT_FALSE(sched.online_at(t + w)) << "t=" << t << " w=" << w;
    }
  }
}

TEST_P(FuzzSeeds, OnlineWithinWindowMatchesMinuteScan) {
  util::Rng rng(GetParam() + 300);
  for (int round = 0; round < 30; ++round) {
    IntervalSet s;
    const auto pieces = 1 + rng.below(4);
    for (std::uint64_t i = 0; i < pieces; ++i) {
      const Seconds start = rng.range(0, 1430) * 60;
      const Seconds len = rng.range(1, 120) * 60;
      s.add(start, std::min(start + len, kDaySeconds));
    }
    const DaySchedule sched(std::move(s));
    const Seconds t = rng.range(0, 1439) * 60;
    const Seconds len = rng.range(1, 3000) * 60;  // up to ~2 days

    Seconds brute = 0;
    for (Seconds m = 0; m < len; m += 60)
      if (sched.online_at(t + m)) brute += 60;
    EXPECT_EQ(sched.online_within_window(t, len), brute);
  }
}

TEST_P(FuzzSeeds, EventQueueMatchesSortedReplay) {
  util::Rng rng(GetParam() + 400);
  for (int round = 0; round < 20; ++round) {
    const std::size_t n = 50 + rng.below(100);
    std::vector<std::pair<net::SimTime, int>> scheduled;
    net::EventQueue queue;
    std::vector<int> fired;
    for (std::size_t i = 0; i < n; ++i) {
      const auto t = static_cast<net::SimTime>(rng.below(40));
      const int tag = static_cast<int>(i);
      scheduled.emplace_back(t, tag);
      queue.schedule(t, [&fired, tag] { fired.push_back(tag); });
    }
    queue.run_all();

    std::stable_sort(scheduled.begin(), scheduled.end(),
                     [](const auto& a, const auto& b) {
                       return a.first < b.first;
                     });
    ASSERT_EQ(fired.size(), scheduled.size());
    for (std::size_t i = 0; i < fired.size(); ++i)
      EXPECT_EQ(fired[i], scheduled[i].second);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSeeds,
                         ::testing::Values(101, 202, 303, 404, 505));

}  // namespace
}  // namespace dosn
