// Reference-model fuzzing: the optimized data structures are checked
// against deliberately naive implementations on thousands of random
// inputs — a second, independent implementation of the same semantics.
// Plus a garbage/truncation corpus for the dataset parsers: arbitrary
// bytes must either parse or throw a line-numbered dosn::Error, never
// crash or silently mangle data.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <set>
#include <string>

#include "interval/day_schedule.hpp"
#include "interval/interval_set.hpp"
#include "net/event_queue.hpp"
#include "net/scenario.hpp"
#include "net/social_dht.hpp"
#include "placement/super_peer.hpp"
#include "trace/parsers.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace dosn {
namespace {

using interval::DaySchedule;
using interval::Interval;
using interval::IntervalSet;
using interval::kDaySeconds;
using interval::Seconds;

/// Naive reference: a set of covered integer points on a coarse grid.
class PointSet {
 public:
  void add(Seconds start, Seconds end) {
    for (Seconds t = start; t < end; ++t) points_.insert(t);
  }
  static PointSet of(const IntervalSet& s) {
    PointSet p;
    for (const auto& iv : s.pieces()) p.add(iv.start, iv.end);
    return p;
  }
  PointSet unite(const PointSet& o) const {
    PointSet r = *this;
    r.points_.insert(o.points_.begin(), o.points_.end());
    return r;
  }
  PointSet intersect(const PointSet& o) const {
    PointSet r;
    for (Seconds t : points_)
      if (o.points_.count(t)) r.points_.insert(t);
    return r;
  }
  PointSet subtract(const PointSet& o) const {
    PointSet r;
    for (Seconds t : points_)
      if (!o.points_.count(t)) r.points_.insert(t);
    return r;
  }
  std::size_t size() const { return points_.size(); }
  bool contains(Seconds t) const { return points_.count(t) > 0; }
  bool operator==(const PointSet&) const = default;

 private:
  std::set<Seconds> points_;
};

IntervalSet random_set(util::Rng& rng, Seconds universe, int max_pieces) {
  IntervalSet s;
  const auto pieces = rng.below(static_cast<std::uint64_t>(max_pieces) + 1);
  for (std::uint64_t i = 0; i < pieces; ++i) {
    const Seconds start = rng.range(0, universe - 2);
    const Seconds len = rng.range(1, std::min<Seconds>(40, universe - start));
    s.add(start, start + len);
  }
  return s;
}

class FuzzSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzSeeds, IntervalAlgebraMatchesPointSet) {
  util::Rng rng(GetParam());
  constexpr Seconds kUniverse = 300;  // small so PointSet stays cheap
  for (int round = 0; round < 120; ++round) {
    const auto a = random_set(rng, kUniverse, 5);
    const auto b = random_set(rng, kUniverse, 5);
    const auto pa = PointSet::of(a);
    const auto pb = PointSet::of(b);

    EXPECT_EQ(PointSet::of(a.unite(b)), pa.unite(pb));
    EXPECT_EQ(PointSet::of(a.intersect(b)), pa.intersect(pb));
    EXPECT_EQ(PointSet::of(a.subtract(b)), pa.subtract(pb));
    EXPECT_EQ(static_cast<std::size_t>(a.measure()), pa.size());
    EXPECT_EQ(static_cast<std::size_t>(a.intersection_measure(b)),
              pa.intersect(pb).size());

    const Seconds probe = rng.range(0, kUniverse);
    EXPECT_EQ(a.contains(probe), pa.contains(probe));
    EXPECT_EQ(a.intersects(b), pa.intersect(pb).size() > 0);

    const Seconds lo = rng.range(0, kUniverse - 2);
    const Seconds hi = rng.range(lo + 1, kUniverse);
    EXPECT_EQ(static_cast<std::size_t>(a.measure_within(lo, hi)),
              pa.intersect(PointSet::of(IntervalSet::single(lo, hi))).size());
  }
}

TEST_P(FuzzSeeds, NextAtOrAfterMatchesScan) {
  util::Rng rng(GetParam() + 100);
  for (int round = 0; round < 100; ++round) {
    const auto a = random_set(rng, 300, 5);
    const auto pa = PointSet::of(a);
    const Seconds t = rng.range(0, 320);
    std::optional<Seconds> expected;
    for (Seconds probe = t; probe < 340; ++probe) {
      if (pa.contains(probe)) {
        expected = probe;
        break;
      }
    }
    EXPECT_EQ(a.next_at_or_after(t), expected);
  }
}

TEST_P(FuzzSeeds, WaitUntilOnlineMatchesScan) {
  util::Rng rng(GetParam() + 200);
  for (int round = 0; round < 40; ++round) {
    // Coarse schedules: pieces aligned to 10-minute slots.
    IntervalSet s;
    const auto pieces = 1 + rng.below(4);
    for (std::uint64_t i = 0; i < pieces; ++i) {
      const Seconds start = rng.range(0, 143) * 600;
      const Seconds len = rng.range(1, 6) * 600;
      s.add(start, std::min(start + len, kDaySeconds));
    }
    const DaySchedule sched(std::move(s));
    for (int probe = 0; probe < 20; ++probe) {
      const Seconds t = rng.range(0, kDaySeconds - 1);
      const auto wait = sched.wait_until_online(t);
      ASSERT_TRUE(wait.has_value());
      // The answer is an online instant...
      EXPECT_TRUE(sched.online_at(t + *wait));
      // ...and nothing earlier is (scan at minute granularity; schedule
      // boundaries are 10-minute aligned so a minute grid cannot miss an
      // online stretch).
      for (Seconds w = 0; w < *wait; w += 60)
        EXPECT_FALSE(sched.online_at(t + w)) << "t=" << t << " w=" << w;
    }
  }
}

TEST_P(FuzzSeeds, OnlineWithinWindowMatchesMinuteScan) {
  util::Rng rng(GetParam() + 300);
  for (int round = 0; round < 30; ++round) {
    IntervalSet s;
    const auto pieces = 1 + rng.below(4);
    for (std::uint64_t i = 0; i < pieces; ++i) {
      const Seconds start = rng.range(0, 1430) * 60;
      const Seconds len = rng.range(1, 120) * 60;
      s.add(start, std::min(start + len, kDaySeconds));
    }
    const DaySchedule sched(std::move(s));
    const Seconds t = rng.range(0, 1439) * 60;
    const Seconds len = rng.range(1, 3000) * 60;  // up to ~2 days

    Seconds brute = 0;
    for (Seconds m = 0; m < len; m += 60)
      if (sched.online_at(t + m)) brute += 60;
    EXPECT_EQ(sched.online_within_window(t, len), brute);
  }
}

TEST_P(FuzzSeeds, EventQueueMatchesSortedReplay) {
  util::Rng rng(GetParam() + 400);
  for (int round = 0; round < 20; ++round) {
    const std::size_t n = 50 + rng.below(100);
    std::vector<std::pair<net::SimTime, int>> scheduled;
    net::EventQueue queue;
    std::vector<int> fired;
    for (std::size_t i = 0; i < n; ++i) {
      const auto t = static_cast<net::SimTime>(rng.below(40));
      const int tag = static_cast<int>(i);
      scheduled.emplace_back(t, tag);
      queue.schedule(t, [&fired, tag] { fired.push_back(tag); });
    }
    queue.run_all();

    std::stable_sort(scheduled.begin(), scheduled.end(),
                     [](const auto& a, const auto& b) {
                       return a.first < b.first;
                     });
    ASSERT_EQ(fired.size(), scheduled.size());
    for (std::size_t i = 0; i < fired.size(); ++i)
      EXPECT_EQ(fired[i], scheduled[i].second);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSeeds,
                         ::testing::Values(101, 202, 303, 404, 505));

// ---------------------------------------------------------------------------
// Parser corpus: the New Orleans wall trace (edge list + `receiver creator
// timestamp` activities) and the tweet-list format (the same activity
// layout over a directed follower graph) fed garbage and truncated inputs.
// Contract: load_* returns parsed data or throws dosn::Error — no crash,
// no silent skip; parse errors name the file, line, and offending bytes.

class ParserFuzz : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  void SetUp() override {
    // Unique per test case (not just per seed): ctest -j runs each case
    // as its own process, and two cases sharing a seed would race one
    // another's TearDown. The gtest name is "<Test>/<index>"; keep the
    // path flat by replacing the slash.
    std::string name =
        ::testing::UnitTest::GetInstance()->current_test_info()->name();
    for (char& c : name)
      if (c == '/') c = '_';
    dir_ = std::filesystem::path(testing::TempDir()) /
           ("dosn_parser_fuzz_" + name + "_" + std::to_string(GetParam()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string write_file(const std::string& name, const std::string& body) {
    const auto path = (dir_ / name).string();
    std::ofstream out(path, std::ios::binary);
    out << body;
    return path;
  }

  std::filesystem::path dir_;
};

namespace fuzz_corpus {

/// Random byte soup biased toward the characters the formats use, with
/// control bytes, NULs, and high bytes mixed in.
std::string garbage(util::Rng& rng, std::size_t max_len) {
  static constexpr char kAlphabet[] =
      "0123456789abcdef \t\n\n#%\\N-+.\r\x01\x00\x7f\xff";
  std::string out;
  const auto len = rng.below(max_len + 1);
  for (std::uint64_t i = 0; i < len; ++i)
    out.push_back(kAlphabet[rng.below(sizeof(kAlphabet) - 1)]);
  return out;
}

constexpr char kNewOrleansActivities[] =
    "# wall posts: receiver creator unix-timestamp\n"
    "10 20 1167612766\n"
    "10 31 1167618000\n"
    "20 10 1167704333\n"
    "31 20 1167790000\n";

constexpr char kTweetList[] =
    "% tweets: timeline-owner author unix-timestamp\n"
    "alice alice 1273832000\n"
    "bob alice 1273832000\n"
    "alice bob 1273918400\n";

}  // namespace fuzz_corpus

TEST_P(ParserFuzz, GarbageNeverCrashesEitherLoader) {
  util::Rng rng(GetParam());
  for (int round = 0; round < 60; ++round) {
    const auto body = fuzz_corpus::garbage(rng, 400);
    const auto file = write_file("soup", body);
    trace::IdMap edge_ids, act_ids;
    try {
      (void)trace::load_edge_list(file, edge_ids);
    } catch (const Error&) {
      // Rejection is fine; anything else (crash, UB) is the bug.
    }
    try {
      (void)trace::load_activities(file, act_ids);
    } catch (const Error&) {
    }
  }
}

// Scenario config parsing: same contract as the dataset loaders —
// arbitrary bytes either parse into a validated spec or throw a
// line-numbered dosn::Error, never crash; whatever parses round-trips
// through to_text.
TEST_P(ParserFuzz, ScenarioGarbageParsesOrThrows) {
  util::Rng rng(GetParam());
  static constexpr char kScenarioAlphabet[] =
      "0123456789. =_\t\n#regional_outage flash_crowd churn_burst "
      "regions region start end participation load_multiplier no_show"
      "\x01\x00\x7f\xff-";
  for (int round = 0; round < 60; ++round) {
    std::string body;
    const auto len = rng.below(400);
    for (std::uint64_t i = 0; i < len; ++i)
      body.push_back(
          kScenarioAlphabet[rng.below(sizeof(kScenarioAlphabet) - 1)]);
    try {
      const auto spec = net::parse_scenario(body);
      EXPECT_EQ(net::parse_scenario(net::to_text(spec)), spec);
    } catch (const Error&) {
      // Rejection is fine; anything else (crash, UB) is the bug.
    }
  }
}

TEST_P(ParserFuzz, ScenarioTruncationsParseOrThrow) {
  static constexpr char kScenario[] =
      "# composite scenario\n"
      "regional_outage regions=2 region=0 start=172800 end=432000 "
      "participation=0.9\n"
      "flash_crowd start=86400 end=259200 load_multiplier=3\n"
      "churn_burst start=345600 end=604800 no_show=0.5 participation=0.8\n";
  const std::string_view full(kScenario);
  const auto reference = net::parse_scenario(full);
  for (std::size_t cut = 0; cut <= full.size(); ++cut) {
    try {
      const auto spec = net::parse_scenario(full.substr(0, cut));
      // Whatever parses must be a per-class prefix of the full spec.
      EXPECT_LE(spec.regional_outages.size(),
                reference.regional_outages.size());
      EXPECT_LE(spec.flash_crowds.size(), reference.flash_crowds.size());
      EXPECT_LE(spec.churn_bursts.size(), reference.churn_bursts.size());
    } catch (const Error&) {
      // Truncations land in one of three typed rejections: a ParseError
      // from the line parser or a numeric field, or a ConfigError from
      // validate() — never a crash.
    }
  }
  // An unknown class still names its line.
  try {
    net::parse_scenario("meteor_strike start=0 end=1");
    FAIL() << "unknown class accepted";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("scenario line 1"),
              std::string::npos)
        << e.what();
  }
  EXPECT_EQ(net::parse_scenario(net::to_text(reference)), reference);
}

// Storage-regime config parsing (net/social_dht.hpp,
// placement/super_peer.hpp): the same grammar discipline as the
// scenario parser — garbage parses or throws a line-numbered error, and
// whatever parses round-trips through to_text.
TEST_P(ParserFuzz, RegimeConfigGarbageParsesOrThrows) {
  util::Rng rng(GetParam());
  static constexpr char kRegimeAlphabet[] =
      "0123456789. =_\t\n#social_dht super_peer replication "
      "socially_aware cluster_cap hop_cost volunteer_threshold "
      "target_availability max_storekeepers\x01\x00\x7f\xff-";
  for (int round = 0; round < 60; ++round) {
    std::string body;
    const auto len = rng.below(400);
    for (std::uint64_t i = 0; i < len; ++i)
      body.push_back(kRegimeAlphabet[rng.below(sizeof(kRegimeAlphabet) - 1)]);
    try {
      const auto config = net::parse_social_dht(body);
      EXPECT_EQ(net::parse_social_dht(net::to_text(config)), config);
    } catch (const Error&) {
      // Rejection is fine; anything else (crash, UB) is the bug.
    }
    try {
      const auto config = placement::parse_super_peer(body);
      EXPECT_EQ(placement::parse_super_peer(placement::to_text(config)),
                config);
    } catch (const Error&) {
    }
  }
}

TEST_P(ParserFuzz, RegimeConfigTruncationsParseOrThrow) {
  static constexpr char kSocialDht[] =
      "# socially-aware ring\n"
      "social_dht replication=5 socially_aware=1 cluster_cap=16 "
      "hop_cost=11\n";
  static constexpr char kSuperPeer[] =
      "# storekeeper tier\n"
      "super_peer volunteer_threshold=0.25 target_availability=0.75 "
      "max_storekeepers=12\n";
  const std::string_view dht_full(kSocialDht);
  const std::string_view sp_full(kSuperPeer);
  for (std::size_t cut = 0; cut <= dht_full.size(); ++cut) {
    try {
      // A truncated prefix either throws or yields a valid config that
      // round-trips — never a silently mangled value.
      const auto config = net::parse_social_dht(dht_full.substr(0, cut));
      EXPECT_EQ(net::parse_social_dht(net::to_text(config)), config);
    } catch (const Error&) {
    }
  }
  for (std::size_t cut = 0; cut <= sp_full.size(); ++cut) {
    try {
      const auto config = placement::parse_super_peer(sp_full.substr(0, cut));
      EXPECT_EQ(placement::parse_super_peer(placement::to_text(config)),
                config);
    } catch (const Error&) {
    }
  }
  // An unknown record still names its line in both grammars.
  try {
    net::parse_social_dht("warp_ring radius=3");
    FAIL() << "unknown record accepted";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("social_dht line 1"),
              std::string::npos)
        << e.what();
  }
  try {
    placement::parse_super_peer("mega_peer count=3");
    FAIL() << "unknown record accepted";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("super_peer line 1"),
              std::string::npos)
        << e.what();
  }
  EXPECT_EQ(net::parse_social_dht(dht_full).replication, 5u);
  EXPECT_EQ(placement::parse_super_peer(sp_full).max_storekeepers, 12u);
}

TEST_P(ParserFuzz, TruncatedNewOrleansActivitiesParseOrThrow) {
  const std::string body = fuzz_corpus::kNewOrleansActivities;
  for (std::size_t cut = 0; cut <= body.size(); ++cut) {
    const auto file = write_file("t.activities", body.substr(0, cut));
    trace::IdMap ids;
    try {
      const auto acts = trace::load_activities(file, ids);
      // Whatever parsed must be a prefix of the real records: ids match
      // exactly, and only the final timestamp may be a truncated (shorter)
      // spelling of the true one — a mid-number cut is indistinguishable
      // from a smaller value in a line-oriented format.
      const struct { const char *receiver, *creator, *ts; } expected[] = {
          {"10", "20", "1167612766"},
          {"10", "31", "1167618000"},
          {"20", "10", "1167704333"},
          {"31", "20", "1167790000"},
      };
      ASSERT_LE(acts.size(), 4u);
      for (std::size_t i = 0; i < acts.size(); ++i) {
        EXPECT_EQ(ids.name_of(acts[i].receiver), expected[i].receiver);
        EXPECT_EQ(ids.name_of(acts[i].creator), expected[i].creator);
        const std::string ts = std::to_string(acts[i].timestamp);
        if (i + 1 < acts.size())
          EXPECT_EQ(ts, expected[i].ts);
        else
          EXPECT_EQ(std::string(expected[i].ts).substr(0, ts.size()), ts);
      }
    } catch (const ParseError& e) {
      // A cut mid-record must name the file and the line it broke on.
      EXPECT_NE(std::string(e.what()).find(file), std::string::npos);
      EXPECT_NE(std::string(e.what()).find(':'), std::string::npos);
    }
  }
}

TEST_P(ParserFuzz, TruncatedTweetListDatasetParseOrThrow) {
  const auto edges = write_file("tw.edges", "bob alice\ncarol alice\n");
  const std::string body = fuzz_corpus::kTweetList;
  for (std::size_t cut = 0; cut <= body.size(); ++cut) {
    const auto acts = write_file("tw.activities", body.substr(0, cut));
    try {
      const auto d = trace::load_dataset("tw", edges, acts,
                                         graph::GraphKind::kDirected);
      EXPECT_EQ(d.graph.degree(1), 2u);  // alice's followers survive
      EXPECT_LE(d.trace.size(), 3u);
    } catch (const Error&) {
    }
  }
}

TEST_P(ParserFuzz, ErrorsCarryLineNumberAndSnippet) {
  const auto file = write_file("bad.activities",
                               "a b 100\n"
                               "b a 200\n"
                               "b a not-a-time\n");
  trace::IdMap ids;
  try {
    (void)trace::load_activities(file, ids);
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find(file + ":3:"), std::string::npos) << what;
    EXPECT_NE(what.find("not-a-time"), std::string::npos) << what;
  }
}

TEST_P(ParserFuzz, ControlBytesAreEscapedInErrors) {
  const auto file = write_file("ctl.edges", std::string("lonely\x01\n"));
  trace::IdMap ids;
  try {
    (void)trace::load_edge_list(file, ids);
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("\\x01"), std::string::npos) << what;
    EXPECT_EQ(what.find('\x01'), std::string::npos) << what;
  }
}

TEST_P(ParserFuzz, OverlongLinesAreTruncatedInErrors) {
  const auto file =
      write_file("long.edges", std::string(500, 'x') + "\n");
  trace::IdMap ids;
  try {
    (void)trace::load_edge_list(file, ids);
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    const std::string what = e.what();
    EXPECT_LT(what.size(), 300u) << what;
    EXPECT_NE(what.find("..."), std::string::npos) << what;
  }
}

TEST_P(ParserFuzz, MissingTrailingNewlineStillParses) {
  const auto file = write_file("no_nl.activities", "a b 100\nb a 200");
  trace::IdMap ids;
  const auto acts = trace::load_activities(file, ids);
  ASSERT_EQ(acts.size(), 2u);
  EXPECT_EQ(acts[1].timestamp, 200);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzz,
                         ::testing::Values(11, 22, 33));

}  // namespace
}  // namespace dosn
