// Unit tests for the availability metrics (Sec II-C).
#include <gtest/gtest.h>

#include "metrics/availability.hpp"
#include "util/error.hpp"

namespace dosn::metrics {
namespace {

constexpr Seconds kH = 3600;

DaySchedule window(Seconds start_h, Seconds end_h) {
  return DaySchedule(interval::IntervalSet::single(start_h * kH, end_h * kH));
}

TEST(Availability, OwnerOnlyIsOwnCoverage) {
  const auto owner = window(8, 14);
  EXPECT_DOUBLE_EQ(availability(owner, {}), 0.25);
}

TEST(Availability, ReplicasExtendCoverage) {
  const auto owner = window(8, 10);
  std::vector<DaySchedule> reps{window(9, 12), window(20, 22)};
  // Union: 08-12 and 20-22 = 6h.
  EXPECT_DOUBLE_EQ(availability(owner, reps), 0.25);
}

TEST(Availability, OverlapNotDoubleCounted) {
  const auto owner = window(8, 12);
  std::vector<DaySchedule> reps{window(8, 12), window(8, 12)};
  EXPECT_DOUBLE_EQ(availability(owner, reps), 4.0 / 24.0);
}

TEST(Availability, EmptyEverything) {
  EXPECT_DOUBLE_EQ(availability(DaySchedule{}, {}), 0.0);
}

TEST(Availability, MaxAchievableUsesAllContacts) {
  const auto owner = window(8, 10);
  std::vector<DaySchedule> contacts{window(10, 14), window(20, 24)};
  EXPECT_DOUBLE_EQ(max_achievable_availability(owner, contacts), 10.0 / 24.0);
}

TEST(AodTime, FullCoverageWhenReplicasCoverFriends) {
  std::vector<DaySchedule> friends{window(9, 11), window(13, 15)};
  const auto profile = window(8, 16);
  EXPECT_DOUBLE_EQ(aod_time(friends, profile), 1.0);
}

TEST(AodTime, PartialCoverage) {
  std::vector<DaySchedule> friends{window(8, 12)};  // demand: 4h
  const auto profile = window(10, 20);              // covers 10-12
  EXPECT_DOUBLE_EQ(aod_time(friends, profile), 0.5);
}

TEST(AodTime, VacuousWhenFriendsNeverOnline) {
  std::vector<DaySchedule> friends{DaySchedule{}, DaySchedule{}};
  EXPECT_DOUBLE_EQ(aod_time(friends, window(0, 1)), 1.0);
  EXPECT_DOUBLE_EQ(aod_time({}, window(0, 1)), 1.0);
}

TEST(AodTime, ZeroWhenProfileNeverUp) {
  std::vector<DaySchedule> friends{window(8, 12)};
  EXPECT_DOUBLE_EQ(aod_time(friends, DaySchedule{}), 0.0);
}

TEST(AodTime, DemandIsUnionNotSum) {
  // Two friends with identical 4h windows: demand is 4h, not 8h.
  std::vector<DaySchedule> friends{window(8, 12), window(8, 12)};
  const auto profile = window(10, 12);
  EXPECT_DOUBLE_EQ(aod_time(friends, profile), 0.5);
}

class AodActivityTest : public ::testing::Test {
 protected:
  // Users: 0 = profile owner, 1..2 = friends.
  // Schedules: friend 1 online 10-12, friend 2 online 20-22.
  std::vector<DaySchedule> schedules_{window(8, 10), window(10, 12),
                                      window(20, 22)};
};

TEST_F(AodActivityTest, CountsServedActivities) {
  // Activities on 0's profile: 10:30 (by 1, expected), 21:00 (by 2,
  // expected), 03:00 (by 1, unexpected — outside 1's online time).
  trace::ActivityTrace trace(3, {{1, 0, 10 * kH + 1800},
                                 {2, 0, 21 * kH},
                                 {1, 0, 3 * kH}});
  // Profile reachable 10-12 and 02-04.
  const auto profile = DaySchedule(interval::IntervalSet(
      {{10 * kH, 12 * kH}, {2 * kH, 4 * kH}}));
  const auto r = aod_activity(trace, 0, profile, schedules_);
  EXPECT_EQ(r.total_count, 3u);
  EXPECT_EQ(r.expected_count, 2u);
  EXPECT_DOUBLE_EQ(r.overall, 2.0 / 3.0);   // 10:30 and 03:00 served
  EXPECT_DOUBLE_EQ(r.expected, 0.5);        // of {10:30, 21:00} only 10:30
  EXPECT_DOUBLE_EQ(r.unexpected, 1.0);      // 03:00 served
}

TEST_F(AodActivityTest, NoActivitiesIsVacuouslyServed) {
  trace::ActivityTrace trace(3, {});
  const auto r = aod_activity(trace, 0, window(0, 1), schedules_);
  EXPECT_EQ(r.total_count, 0u);
  EXPECT_DOUBLE_EQ(r.overall, 1.0);
}

TEST_F(AodActivityTest, TimestampsProjectAcrossDays) {
  // Same time-of-day on different absolute days hit the same window.
  trace::ActivityTrace trace(
      3, {{1, 0, 11 * kH}, {1, 0, 5 * interval::kDaySeconds + 11 * kH}});
  const auto r = aod_activity(trace, 0, window(10, 12), schedules_);
  EXPECT_DOUBLE_EQ(r.overall, 1.0);
}

TEST_F(AodActivityTest, OnlyReceiverActivitiesCount) {
  // Activity received by user 1, not user 0.
  trace::ActivityTrace trace(3, {{0, 1, 11 * kH}});
  const auto r = aod_activity(trace, 0, DaySchedule{}, schedules_);
  EXPECT_EQ(r.total_count, 0u);
}

TEST(ProfileSchedule, UnionOfOwnerAndReplicas) {
  const auto owner = window(8, 10);
  std::vector<DaySchedule> reps{window(9, 12)};
  const auto p = profile_schedule(owner, reps);
  EXPECT_EQ(p.online_seconds(), 4 * kH);
  EXPECT_TRUE(p.online_at(11 * kH));
}

}  // namespace
}  // namespace dosn::metrics
