#!/usr/bin/env python3
"""Atomics-discipline linter for the dosn-study sources.

The work-stealing runtime (DESIGN.md §12) and the observability layer
(§9) put the hot path on hand-ordered atomics. A single wrong
`memory_order_relaxed` is invisible to tests and to TSan on the
interleavings a run happens to explore, and only corrupts a sweep
checksum on weaker hardware. This linter enforces the repo's atomics
protocol (DESIGN.md §13) textually, the same way lint_determinism.py
enforces the determinism rules:

Rules
-----
  implicit-order  every std::atomic load/store/RMW must name an explicit
                  std::memory_order — seq-cst-by-default hides the
                  author's intent and costs fences nobody audited.
                  Covers .load/.store/.exchange/.fetch_*/
                  .compare_exchange_{weak,strong}/.test_and_set.
  missing-protocol every site that names an explicit memory order must
                  carry a `protocol:` comment (same line, or in the
                  contiguous `//` block above the statement) explaining
                  what the order pairs with — acquire without its
                  release partner is the bug class this catches.
  raw-volatile    `volatile` is not a synchronization primitive; use
                  std::atomic with an explicit order.
  thread-outside-util
                  raw std::thread construction belongs to the runtime
                  layer (src/util); everything else runs on
                  PipelineRuntime/ThreadPool so lifecycle, exception
                  propagation and nesting stay centralized. (Applies to
                  src/ outside src/util/; tests and benches may spawn
                  scaffolding threads.)
  double-checked-locking
                  an `if (x)` guarding a lock acquisition followed by a
                  re-check of the same condition — the classic broken
                  DCLP shape; use a mutex-only fast path, call_once, or
                  an acquire-published pointer.

Suppressions
------------
A finding is suppressed when the matched line, the statement's first
line, or the contiguous `//` comment block directly above the statement
contains `lint:atomics-ok` with a justification (the linter only checks
the marker exists). Suppressions are for protocol-reviewed sites, e.g.
the synth pipeline's producer thread.

Usage
-----
  tools/lint_atomics.py [--self-test] [path ...]

With no paths, scans `src/` relative to the repository root. Exits 1
when findings remain, 0 when clean. `--self-test` runs the embedded
positive/negative corpus; CI and ctest run it before trusting a clean
scan.
"""

from __future__ import annotations

import argparse
import pathlib
import re
import sys

SOURCE_SUFFIXES = {".cpp", ".hpp", ".h", ".cc", ".cxx"}

SUPPRESS = "lint:atomics-ok"

# Atomic member functions that accept a std::memory_order argument.
ATOMIC_CALL = re.compile(
    r"\.\s*(load|store|exchange|fetch_add|fetch_sub|fetch_and|fetch_or|"
    r"fetch_xor|compare_exchange_weak|compare_exchange_strong|test_and_set)"
    r"\s*\("
)

MEMORY_ORDER = re.compile(
    r"\bmemory_order(?:_|::)?(relaxed|acquire|release|acq_rel|seq_cst|consume)\b"
)

VOLATILE = re.compile(r"\bvolatile\b")

STD_THREAD = re.compile(r"\bstd::thread\b(?!::hardware_concurrency)")

LOCK_ACQ = re.compile(
    r"\b(MutexLock|lock_guard|unique_lock|scoped_lock)\b|\.\s*lock\s*\(")

IF_COND = re.compile(r"\bif\s*\((.*?)\)")

_BLANK = re.compile(r"[^\n]")


def strip_comments_and_strings(text: str) -> str:
    """Blanks out comments and string/char literals, preserving line
    structure, so documentation mentioning memory orders is not a
    finding. (Same algorithm as lint_determinism.py.)"""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            j = text.find("\n", i)
            j = n if j < 0 else j
            out.append(" " * (j - i))
            i = j
        elif c == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            j = n if j < 0 else j + 2
            out.append(_BLANK.sub(" ", text[i:j]))
            i = j
        elif c in "\"'":
            quote = c
            j = i + 1
            while j < n and text[j] != quote:
                j += 2 if text[j] == "\\" else 1
            j = min(j + 1, n)
            out.append(quote + " " * (j - i - 2) + (quote if j - i >= 2 else ""))
            i = j
        else:
            out.append(c)
            i += 1
    return "".join(out)


def statement_first_line(code_lines: list[str], lineno0: int) -> int:
    """0-based index of the first line of the statement containing
    `lineno0`: walks up while the previous stripped-code line is a
    continuation (non-blank and not ending in ; { } :)."""
    i = lineno0
    while i > 0:
        prev = code_lines[i - 1].rstrip()
        if not prev.strip() or prev.endswith((";", "{", "}", ":")):
            break
        i -= 1
    return i


def comment_context(raw_lines: list[str], code_lines: list[str],
                    lineno0: int) -> list[str]:
    """The lines whose comments may cover `lineno0`: the line itself,
    every line of its statement up to the first, and the contiguous `//`
    block directly above the statement."""
    first = statement_first_line(code_lines, lineno0)
    context = raw_lines[first:lineno0 + 1]
    k = first - 1
    while k >= 0 and raw_lines[k].lstrip().startswith("//"):
        context.append(raw_lines[k])
        k -= 1
    return context


def call_arguments(code: str, open_paren: int) -> str:
    """The argument text of the call whose '(' is at `open_paren` in the
    stripped source (may span lines); truncated at EOF if unbalanced."""
    depth = 0
    for j in range(open_paren, len(code)):
        if code[j] == "(":
            depth += 1
        elif code[j] == ")":
            depth -= 1
            if depth == 0:
                return code[open_paren + 1:j]
    return code[open_paren + 1:]


def scan_text(text: str, path: str) -> list[tuple[str, int, str, str]]:
    """Returns (path, 1-based line, rule, message) findings for one file."""
    raw_lines = text.splitlines()
    code = strip_comments_and_strings(text)
    code_lines = code.splitlines()
    # Offset of each line start in `code` (same layout as `text`).
    line_starts = [0]
    for line in code_lines:
        line_starts.append(line_starts[-1] + len(line) + 1)

    findings = []

    def suppressed(lineno0: int) -> bool:
        return any(SUPPRESS in line
                   for line in comment_context(raw_lines, code_lines, lineno0))

    def has_protocol(lineno0: int) -> bool:
        return any("protocol:" in line
                   for line in comment_context(raw_lines, code_lines, lineno0))

    def add(lineno0: int, rule: str, message: str) -> None:
        if not suppressed(lineno0):
            findings.append((path, lineno0 + 1, rule, message))

    # implicit-order: atomic calls whose argument list names no order.
    for m in ATOMIC_CALL.finditer(code):
        lineno0 = code.count("\n", 0, m.start())
        args = call_arguments(code, m.end() - 1)
        if not MEMORY_ORDER.search(args):
            add(lineno0, "implicit-order",
                f".{m.group(1)}() without an explicit std::memory_order — "
                "seq-cst-by-default hides intent; name the order and its "
                "pairing")

    # missing-protocol: explicit orders must carry a protocol comment.
    for lineno0, line in enumerate(code_lines):
        if not MEMORY_ORDER.search(line):
            continue
        if has_protocol(lineno0):
            continue
        add(lineno0, "missing-protocol",
            "explicit memory order without a `protocol:` comment — state "
            "what this site pairs with (or why relaxed is safe)")

    # raw-volatile.
    for lineno0, line in enumerate(code_lines):
        if VOLATILE.search(line):
            add(lineno0, "raw-volatile",
                "volatile is not a synchronization primitive; use "
                "std::atomic with an explicit memory order")

    # thread-outside-util: raw std::thread only inside src/util/.
    norm = path.replace("\\", "/")
    in_src = "/src/" in norm or norm.startswith("src/")
    in_util = "/util/" in norm or norm.startswith("util/")
    if in_src and not in_util:
        for lineno0, line in enumerate(code_lines):
            if STD_THREAD.search(line):
                add(lineno0, "thread-outside-util",
                    "raw std::thread outside src/util — run on "
                    "PipelineRuntime/ThreadPool, or justify with "
                    "lint:atomics-ok")

    # double-checked-locking: if (x) ... lock ... if (x) within a short
    # window. Textual heuristic for the classic broken shape.
    for lineno0, line in enumerate(code_lines):
        m = IF_COND.search(line)
        if not m:
            continue
        cond = re.sub(r"\s+", "", m.group(1))
        if not cond:
            continue
        window = code_lines[lineno0 + 1:lineno0 + 5]
        for k, lock_line in enumerate(window):
            if not LOCK_ACQ.search(lock_line):
                continue
            recheck = code_lines[lineno0 + 1 + k + 1:lineno0 + 1 + k + 5]
            for j, rl in enumerate(recheck):
                m2 = IF_COND.search(rl)
                if m2 and re.sub(r"\s+", "", m2.group(1)) == cond:
                    add(lineno0, "double-checked-locking",
                        "re-checking the same condition around a lock "
                        "(classic broken DCLP) — use call_once, a "
                        "mutex-only fast path, or an acquire-published "
                        "pointer")
                    break
            else:
                continue
            break
    return findings


def scan_paths(paths: list[pathlib.Path]) -> list[tuple[str, int, str, str]]:
    findings = []
    for root in paths:
        files = (
            sorted(p for p in root.rglob("*") if p.suffix in SOURCE_SUFFIXES)
            if root.is_dir()
            else [root]
        )
        for f in files:
            findings.extend(scan_text(f.read_text(encoding="utf-8"), str(f)))
    return findings


# (snippet, pseudo-path, expected rule or None)
SELF_TEST_CASES = [
    # implicit-order positives: defaulted seq-cst in every RMW/load/store.
    ("flag_.store(true);", "src/x.cpp", "implicit-order"),
    ("auto v = flag_.load();", "src/x.cpp", "implicit-order"),
    ("count_.fetch_add(1);", "src/x.cpp", "implicit-order"),
    ("old = state_.exchange(next);", "src/x.cpp", "implicit-order"),
    ("done = top_.compare_exchange_strong(t, t + 1);", "src/x.cpp",
     "implicit-order"),
    # ... including when the call spans lines.
    ("bool won = top_.compare_exchange_strong(\n    t, t + 1);",
     "src/x.cpp", "implicit-order"),
    # Explicit order without a protocol comment: still a finding.
    ("flag_.store(true, std::memory_order_release);", "src/x.cpp",
     "missing-protocol"),
    # Explicit order + protocol comment (same line): clean.
    ("flag_.store(true, std::memory_order_release);  // protocol: pairs "
     "with the acquire load in run()", "src/x.cpp", None),
    # Explicit order + protocol comment (block above): clean.
    ("// protocol: release — publishes the slot write; pairs with the\n"
     "// consumer's acquire load of tail_.\n"
     "tail_.store(next, std::memory_order_release);", "src/x.cpp", None),
    # Multi-line call with the order on a continuation line: the comment
    # above the *statement* covers it.
    ("// protocol: seq_cst CAS — totally ordered with take()'s CAS.\n"
     "bool won = top_.compare_exchange_strong(\n"
     "    t, t + 1, std::memory_order_seq_cst, std::memory_order_relaxed);",
     "src/x.cpp", None),
    # lint:atomics-ok suppresses any rule.
    ("count_.fetch_add(1);  // lint:atomics-ok legacy telemetry, audited",
     "src/x.cpp", None),
    # raw-volatile.
    ("volatile int ready = 0;", "src/x.cpp", "raw-volatile"),
    # std::thread placement.
    ("std::thread worker([&] { run(); });", "src/sim/x.cpp",
     "thread-outside-util"),
    ("std::thread worker([&] { run(); });", "src/util/x.cpp", None),
    ("// lint:atomics-ok — joined before return, SPSC handoff only\n"
     "std::thread producer([&] { produce(); });", "src/synth/x.cpp", None),
    ("unsigned hw = std::thread::hardware_concurrency();", "src/sim/x.cpp",
     None),
    # Double-checked locking.
    ("if (instance_ == nullptr) {\n"
     "  MutexLock lock(mutex_);\n"
     "  if (instance_ == nullptr) {\n"
     "    instance_ = new Registry();\n"
     "  }\n"
     "}", "src/x.cpp", "double-checked-locking"),
    # Plain locked check (no outer unguarded test): clean.
    ("MutexLock lock(mutex_);\n"
     "if (instance_ == nullptr) {\n"
     "  instance_ = new Registry();\n"
     "}", "src/x.cpp", None),
    # Negatives: comments, strings, and non-atomic identifiers.
    ("// the docs discuss flag_.store(true) semantics", "src/x.cpp", None),
    ("log(\"x.load() would need an order\");", "src/x.cpp", None),
    ("schedule.load_from_csv(path);", "src/x.cpp", None),  # not 1-arg .load(
    ("results.store_to(path);", "src/x.cpp", None),
    ("buffer_.resize(n);", "src/x.cpp", None),
]


def self_test() -> int:
    failures = 0
    for snippet, pseudo_path, expected in SELF_TEST_CASES:
        found = {rule for _, _, rule, _ in scan_text(snippet, pseudo_path)}
        ok = (expected in found) if expected else not found
        if not ok:
            failures += 1
            print(
                f"self-test FAIL: {snippet!r} @ {pseudo_path}: expected "
                f"{expected or 'no finding'}, got {sorted(found) or 'none'}"
            )
    if failures:
        print(f"{failures}/{len(SELF_TEST_CASES)} self-test cases failed")
        return 1
    print(f"self-test OK ({len(SELF_TEST_CASES)} cases)")
    return 0


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("paths", nargs="*", type=pathlib.Path)
    parser.add_argument("--self-test", action="store_true",
                        help="run the linter against embedded samples")
    args = parser.parse_args(argv)

    if args.self_test:
        return self_test()

    paths = args.paths or [pathlib.Path(__file__).resolve().parent.parent / "src"]
    for p in paths:
        if not p.exists():
            print(f"lint_atomics: no such path: {p}", file=sys.stderr)
            return 2

    findings = scan_paths(paths)
    for path, lineno, rule, message in findings:
        print(f"{path}:{lineno}: [{rule}] {message}")
    if findings:
        print(f"lint_atomics: {len(findings)} finding(s)")
        return 1
    print("lint_atomics: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
