#!/usr/bin/env python3
"""Determinism linter for the dosn-study sources.

The study engine guarantees bit-identical results for a fixed seed across
platforms and thread counts (DESIGN.md §7). That guarantee is easy to break
silently: one `std::rand()` call, one iteration over an `unordered_map`
that feeds an output vector, or one distribution seeded from wall-clock
time reorders results without failing a single functional test. This
linter scans the sources for those hazard patterns and fails CI when one
appears outside the audited places.

Rules
-----
  wall-clock      time()/clock()/gettimeofday()/localtime()/... calls:
                  wall-clock input makes runs unrepeatable.
  c-rand          rand()/srand()/random()/drand48()/rand_r(): the C RNG is
                  global, unseeded by the experiment seed, and
                  platform-dependent.
  random-device   std::random_device: nondeterministic by design.
  std-engine      std::mt19937 & friends: distribution output differs per
                  standard library; all randomness must flow through
                  util::Rng (xoshiro256**, portable streams).
  std-distribution std::*_distribution: value sequences are
                  implementation-defined even for a fixed engine.
  thread-id       std::this_thread::get_id()/pthread_self(): logic keyed on
                  scheduler-assigned ids diverges across runs.
  unordered-iter  any use of std::unordered_{map,set,multimap,multiset}:
                  hash iteration order is unspecified, so results computed
                  by iterating one are nondeterministic. Uses whose
                  iteration order provably cannot leak into results carry a
                  `lint:ordered-ok` comment (same line or the line above)
                  with a justification.

Suppressions
------------
A finding is suppressed when the matched line, or the contiguous `//`
comment block directly above it, contains `lint:ordered-ok`
(unordered-iter rule) or `lint:determinism-ok` (any rule). Suppression
comments should say *why* the use is safe — the linter only checks that
the marker exists.

Usage
-----
  tools/lint_determinism.py [--self-test] [path ...]

With no paths, scans `src/` relative to the repository root (the directory
containing this script's parent). CI and ctest scan wider — src/, bench/,
examples/ and tests/ — because a nondeterministic *test* (an unordered
container feeding an expectation, a wall-clock seed) silently weakens the
bit-identity contract it is supposed to enforce. Exits 1 when findings
remain, 0 when clean. `--self-test` runs the linter against embedded
positive/negative samples and exits accordingly — CI runs it so the lint
wall is itself tested.
"""

from __future__ import annotations

import argparse
import pathlib
import re
import sys

SOURCE_SUFFIXES = {".cpp", ".hpp", ".h", ".cc", ".cxx"}

# (rule name, compiled regex, message). Patterns are matched against
# comment- and string-stripped source lines.
RULES = [
    (
        "wall-clock",
        re.compile(r"\b(?:std::)?(?:time|clock|gettimeofday|localtime|gmtime|ctime|mktime)\s*\("),
        "wall-clock input breaks run-to-run reproducibility; derive times from the experiment seed or the simulated clock",
    ),
    (
        "c-rand",
        re.compile(r"\b(?:std::)?(?:rand|srand|random|drand48|lrand48|rand_r)\s*\("),
        "C PRNG is global and platform-dependent; draw from util::Rng",
    ),
    (
        "random-device",
        re.compile(r"\brandom_device\b"),
        "std::random_device is nondeterministic by design; seed util::Rng explicitly",
    ),
    (
        "std-engine",
        re.compile(r"\bstd::(?:mt19937(?:_64)?|minstd_rand0?|ranlux\w+|knuth_b|default_random_engine)\b"),
        "std engines produce library-dependent streams; use util::Rng (portable xoshiro256**)",
    ),
    (
        "std-distribution",
        re.compile(r"\bstd::\w+_distribution\b"),
        "std distribution output is implementation-defined; use util::Rng helpers (uniform/normal/exponential/...)",
    ),
    (
        "thread-id",
        re.compile(r"\b(?:this_thread::get_id|pthread_self)\s*\("),
        "scheduler-assigned thread ids must not influence results; key work by index, not by thread",
    ),
    (
        "unordered-iter",
        re.compile(r"\bunordered_(?:map|set|multimap|multiset)\b"),
        "hash iteration order is unspecified; iterate a sorted structure or annotate with lint:ordered-ok + why",
    ),
]

_BLANK = re.compile(r"[^\n]")


def strip_comments_and_strings(text: str) -> str:
    """Blanks out comments and string/char literals, preserving line
    structure, so documentation mentioning std::mt19937 is not a finding."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            j = text.find("\n", i)
            j = n if j < 0 else j
            out.append(" " * (j - i))
            i = j
        elif c == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            j = n if j < 0 else j + 2
            out.append(_BLANK.sub(" ", text[i:j]))
            i = j
        elif c in "\"'":
            quote = c
            j = i + 1
            while j < n and text[j] != quote:
                j += 2 if text[j] == "\\" else 1
            j = min(j + 1, n)
            out.append(quote + " " * (j - i - 2) + (quote if j - i >= 2 else ""))
            i = j
        else:
            out.append(c)
            i += 1
    return "".join(out)


def scan_text(text: str, path: str) -> list[tuple[str, int, str, str]]:
    """Returns (path, 1-based line, rule, message) findings for one file."""
    raw_lines = text.splitlines()
    stripped_lines = strip_comments_and_strings(text).splitlines()
    findings = []
    for lineno, (raw, code) in enumerate(zip(raw_lines, stripped_lines), 1):
        if code.lstrip().startswith("#include"):
            continue  # the use site is flagged instead of the include
        # The matched line plus the contiguous // comment block above it.
        context = [raw]
        k = lineno - 2
        while k >= 0 and raw_lines[k].lstrip().startswith("//"):
            context.append(raw_lines[k])
            k -= 1
        suppress_all = any("lint:determinism-ok" in line for line in context)
        suppress_ordered = any("lint:ordered-ok" in line for line in context)
        for rule, pattern, message in RULES:
            if not pattern.search(code):
                continue
            if suppress_all:
                continue
            if rule == "unordered-iter" and suppress_ordered:
                continue
            findings.append((path, lineno, rule, message))
    return findings


def scan_paths(paths: list[pathlib.Path]) -> list[tuple[str, int, str, str]]:
    findings = []
    for root in paths:
        files = (
            sorted(p for p in root.rglob("*") if p.suffix in SOURCE_SUFFIXES)
            if root.is_dir()
            else [root]
        )
        for f in files:
            findings.extend(scan_text(f.read_text(encoding="utf-8"), str(f)))
    return findings


SELF_TEST_CASES = [
    # (snippet, expected rule or None)
    ("int x = rand();", "c-rand"),
    ("srand(42);", "c-rand"),
    ("auto t = time(nullptr);", "wall-clock"),
    ("std::random_device rd;", "random-device"),
    ("std::mt19937 gen(42);", "std-engine"),
    ("std::uniform_int_distribution<int> d(0, 9);", "std-distribution"),
    ("auto id = std::this_thread::get_id();", "thread-id"),
    ("std::unordered_map<int, int> m;", "unordered-iter"),
    ("// lint:ordered-ok — never iterated\nstd::unordered_map<int, int> m;", None),
    ("std::unordered_set<int> s;  // lint:ordered-ok membership only", None),
    ("std::mt19937 gen;  // lint:determinism-ok reference impl for a test", None),
    # Negatives: identifiers, comments and strings must not trip rules.
    ("double aod = aod_time(contacts, profile);", None),
    ("auto s = split_by_time(dataset, 0.5);", None),
    ("// unlike std::mt19937, xoshiro is portable", None),
    ("log(\"calling time() here would be bad\");", None),
    ("SimTime now = queue.now();", None),
    ("run_until(end_time);", None),
    # The obs sharded-counter pattern (DESIGN.md §9) must stay lintable:
    # per-thread slots come from a process-wide counter, not scheduler ids,
    # and merging sums commutes — none of it may trip a rule.
    ("std::array<Shard, kShards> shards_{};", None),
    ("thread_local const std::size_t slot = next_slot.fetch_add(1);", None),
    ("shards_[detail::shard_slot()].v.fetch_add(n, std::memory_order_relaxed);", None),
    ("const auto t0 = std::chrono::steady_clock::now();", None),
    # ...whereas keying a shard off the scheduler id, or merging through a
    # hash map, is exactly what the rules exist to catch.
    ("auto slot = std::hash<std::thread::id>{}(std::this_thread::get_id());", "thread-id"),
    ("std::unordered_map<std::string, std::uint64_t> totals;", "unordered-iter"),
    ("// lint:ordered-ok — totals drained via sorted key copy\nstd::unordered_map<std::string, std::uint64_t> totals;", None),
]


def self_test() -> int:
    failures = 0
    for snippet, expected in SELF_TEST_CASES:
        found = {rule for _, _, rule, _ in scan_text(snippet, "<self-test>")}
        ok = (expected in found) if expected else not found
        if not ok:
            failures += 1
            print(
                f"self-test FAIL: {snippet!r}: expected "
                f"{expected or 'no finding'}, got {sorted(found) or 'none'}"
            )
    if failures:
        print(f"{failures}/{len(SELF_TEST_CASES)} self-test cases failed")
        return 1
    print(f"self-test OK ({len(SELF_TEST_CASES)} cases)")
    return 0


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("paths", nargs="*", type=pathlib.Path)
    parser.add_argument("--self-test", action="store_true",
                        help="run the linter against embedded samples")
    args = parser.parse_args(argv)

    if args.self_test:
        return self_test()

    paths = args.paths or [pathlib.Path(__file__).resolve().parent.parent / "src"]
    for p in paths:
        if not p.exists():
            print(f"lint_determinism: no such path: {p}", file=sys.stderr)
            return 2

    findings = scan_paths(paths)
    for path, lineno, rule, message in findings:
        print(f"{path}:{lineno}: [{rule}] {message}")
    if findings:
        print(f"lint_determinism: {len(findings)} finding(s)")
        return 1
    print("lint_determinism: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
