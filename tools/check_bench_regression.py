#!/usr/bin/env python3
"""Bench-regression gate for the BENCH_*.json reports.

Compares a freshly produced bench report against the committed baseline
and fails when the current run is meaningfully worse. Two checks:

correctness
    Every scenario must report ``outputs_identical: true`` — the engine
    optimizations are exact and the fault-injection layer's zero plan must
    reproduce unfaulted outputs, so any divergence is a correctness bug
    regardless of speed. A scenario present in the baseline but missing
    from the current report also fails (a silently dropped workload is not
    a pass). A scenario present only in the *current* report is an
    addition: the gate prints a warning so the baseline gets refreshed,
    but does not fail — new coverage must never be punished.

performance
    Raw milliseconds are machine-dependent (the committed baseline and the
    CI runner are different hardware), so timings are never compared
    directly. Instead each optimized configuration is normalized by the
    *same report's* seed-engine time:

        ratio = <config>_ms / seed_engine_ms

    The seed engine runs identical work in the same process on the same
    machine, so the ratio cancels hardware speed and measures only how
    much of the optimization's advantage survives. The gate fails when a
    current ratio exceeds the baseline ratio by more than ``--threshold``
    (default 0.25, i.e. a >25% relative regression). Scenarios without a
    ``seed_engine_ms`` anchor (e.g. the fault-resilience report, whose
    timings are informational) are correctness-only: their booleans are
    enforced, their milliseconds are not.

memory (warn-only)
    Fields ending in ``peak_rss_mb`` track the memory envelope (the scale
    bench's acceptance criterion). Peak RSS depends on allocator, page
    size and machine, so growth beyond 50% of the baseline prints a
    warning for a human to judge; it never fails the gate.

hardware (warn-only)
    Reports record the machine's ``hardware_threads`` at the top level.
    When the current run's value differs from the baseline's, the gate
    prints both — a reader judging a speedup or RSS warning needs to know
    whether the two reports even ran on comparable hardware (a committed
    single-core-container baseline vs. a multi-core CI runner explains
    most drift on its own). Never a failure: hardware changes are
    expected, silent hardware changes are not.

speedup (warn-only)
    Parallel-scaling health for scenarios that time the same work in two
    configurations (``SPEEDUP_PAIRS``, e.g. ``sweep_parallel_ms`` vs
    ``sweep_serial_ms`` in the scale bench). The within-report quotient

        ratio = parallel_ms / serial_ms

    cancels hardware speed the same way the seed-engine anchor does; a
    ratio drifting up past the baseline by ``SPEEDUP_WARN_FRACTION`` means
    the parallel path lost ground relative to the serial path (the "flat
    parallel scaling" failure mode the work-stealing runtime fixed).
    Warn-only because the quotient also depends on the runner's core
    count: the committed baseline may come from a single-core container,
    where "parallel" measures oversubscription overhead, not speedup.

latency SLOs
    The serving bench (BENCH_serving.json) reports request-latency
    percentiles in *simulated seconds* — deterministic, seed-fixed values
    with no hardware dependence — so ``p50_s`` and ``p99_s`` are gated
    directly: the gate fails when the current value exceeds the baseline
    by more than ``--threshold`` (an improvement passes; refresh the
    baseline to lock it in). A baseline of 0 s fails on any nonzero
    current value — from an exact 0, any growth is a behavior change.
    ``p999_s`` (a single-request tail, the most sensitive percentile to
    an intended workload change) and ``goodput_rps`` (a derived quotient)
    are warn-only: drift prints a warning for a human to judge.

hardware, per scenario (warn-only)
    Newer reports also record ``hardware_threads`` per scenario. When a
    scenario-level value (falling back to the report's top level) differs
    between baseline and current — and at least one report carries the
    field on the scenario itself — the gate names the scenario, so a
    mixed-provenance baseline (scenarios committed from different
    machines) is visible at the granularity where it matters.

``--allow-missing`` downgrades "present in baseline but missing from the
current report" from failure to warning. It exists for baselines committed
from a full run whose CI job reruns only a subset — e.g. BENCH_scale.json
holds N = 100k/500k/1M while the smoke job reruns only N = 100k. Never
use it for same-workload comparisons, where a dropped scenario is a bug.

Usage
-----
  tools/check_bench_regression.py --baseline BENCH_study_engine.json \
      --current ci-bench/BENCH_study_engine.json [--threshold 0.25] \
      [--allow-missing]
  tools/check_bench_regression.py --self-test

``--self-test`` verifies the gate itself: an identical report must pass,
a 30% injected slowdown must fail, and ``outputs_identical: false`` must
fail. CI runs it before trusting the real comparison.
"""

from __future__ import annotations

import argparse
import contextlib
import copy
import io
import json
import pathlib
import sys

# Optimized-engine fields normalized by seed_engine_ms for comparison.
TIMED_FIELDS = [
    "incremental_eager_ms",
    "incremental_lazy_ms",
    "parallel_lazy_ms",
]

DEFAULT_THRESHOLD = 0.25

# Peak-RSS growth beyond this fraction of the baseline prints a warning
# (never a failure — memory is machine-dependent but worth eyeballing).
RSS_WARN_FRACTION = 0.50

# (parallel_field, serial_field) pairs whose within-report quotient tracks
# parallel-scaling health. Warn-only: the quotient depends on the runner's
# core count, which baseline and CI need not share.
SPEEDUP_PAIRS = [
    ("sweep_parallel_ms", "sweep_serial_ms"),
    ("sweep_reshard_ms", "sweep_serial_ms"),
    ("gen_pipelined_ms", "gen_ms"),
]

SPEEDUP_WARN_FRACTION = 0.25

# Deterministic simulated-latency percentiles (serving bench), gated
# directly — simulated seconds are hardware-independent, so no anchor is
# needed. Fails when current > baseline * (1 + threshold).
LATENCY_GATE_FIELDS = ["p50_s", "p99_s"]

# Warn-only latency tail: p999 is a single-request order statistic, the
# first number to move under an intended workload change.
LATENCY_WARN_FIELDS = ["p999_s"]

# Warn-only throughput floor: warns when current < baseline * (1 - f).
GOODPUT_WARN_FIELDS = ["goodput_rps"]
GOODPUT_WARN_FRACTION = 0.25


def load_report(path: pathlib.Path) -> dict:
    with path.open(encoding="utf-8") as fh:
        report = json.load(fh)
    if "scenarios" not in report:
        raise ValueError(f"{path}: no 'scenarios' section")
    return report


def scenario_ratios(scenario: dict) -> dict[str, float]:
    """Timed fields normalized by the seed-engine anchor. Empty for
    correctness-only scenarios (no ``seed_engine_ms``)."""
    if "seed_engine_ms" not in scenario:
        return {}
    seed_ms = float(scenario["seed_engine_ms"])
    if seed_ms <= 0:
        raise ValueError(
            f"scenario {scenario.get('name')!r}: non-positive seed_engine_ms"
        )
    return {f: float(scenario[f]) / seed_ms
            for f in TIMED_FIELDS if f in scenario}


def speedup_ratios(scenario: dict) -> dict[str, float]:
    """parallel/serial quotients for every SPEEDUP_PAIRS pair the scenario
    reports. Lower is better; > 1.0 means the parallel configuration ran
    slower than the serial one."""
    ratios = {}
    for parallel_field, serial_field in SPEEDUP_PAIRS:
        if parallel_field not in scenario or serial_field not in scenario:
            continue
        serial_ms = float(scenario[serial_field])
        if serial_ms <= 0:
            continue
        key = f"{parallel_field}/{serial_field}"
        ratios[key] = float(scenario[parallel_field]) / serial_ms
    return ratios


def warn_on_speedup_regression(name: str, base: dict, cur: dict) -> None:
    """Warn-only parallel-scaling comparison over SPEEDUP_PAIRS."""
    base_ratios = speedup_ratios(base)
    cur_ratios = speedup_ratios(cur)
    for key, base_ratio in base_ratios.items():
        cur_ratio = cur_ratios.get(key)
        if cur_ratio is None or base_ratio <= 0:
            continue
        drift = cur_ratio / base_ratio - 1.0
        if drift > SPEEDUP_WARN_FRACTION:
            print(
                f"  WARNING: {name}.{key}: parallel/serial ratio "
                f"{cur_ratio:.3f} vs baseline {base_ratio:.3f} "
                f"({drift * 100.0:+.0f}%) — parallel scaling regressed, "
                "check the runtime before refreshing the baseline"
            )


def warn_on_rss_growth(name: str, base: dict, cur: dict) -> None:
    """Warn-only memory-envelope comparison over *_peak_rss_mb fields."""
    for field, base_value in base.items():
        if not field.endswith("peak_rss_mb"):
            continue
        cur_value = cur.get(field)
        if cur_value is None or float(base_value) <= 0:
            continue
        growth = float(cur_value) / float(base_value) - 1.0
        if growth > RSS_WARN_FRACTION:
            print(
                f"  WARNING: {name}.{field}: peak RSS grew "
                f"{growth * 100.0:+.0f}% ({base_value} -> {cur_value} MiB) — "
                "memory envelope drift, check before refreshing the baseline"
            )


def check_latency_gates(name: str, base: dict, cur: dict,
                        threshold: float) -> list[str]:
    """Direct (un-anchored) gates over the deterministic simulated-latency
    percentiles; see the module docstring. Returns failure messages."""
    failures = []
    for field in LATENCY_GATE_FIELDS:
        if field not in base or field not in cur:
            continue
        b, c = float(base[field]), float(cur[field])
        limit = b * (1.0 + threshold)
        status = "FAIL" if c > limit else "ok"
        print(f"  {name}.{field}: {c:.0f}s vs baseline {b:.0f}s "
              f"(limit {limit:.0f}s) [{status}]")
        if c > limit:
            failures.append(
                f"{name}: {field} regressed from {b:.0f}s to {c:.0f}s "
                f"(threshold {threshold * 100.0:.0f}%"
                f"{'; exact-zero baseline' if b == 0 else ''})"
            )
    return failures


def warn_on_serving_drift(name: str, base: dict, cur: dict,
                          threshold: float) -> None:
    """Warn-only serving-quality drift: the p999 tail and the goodput
    quotient move first under intended workload changes, so a human
    judges them instead of the gate."""
    for field in LATENCY_WARN_FIELDS:
        if field not in base or field not in cur:
            continue
        b, c = float(base[field]), float(cur[field])
        if c > b * (1.0 + threshold):
            print(
                f"  WARNING: {name}.{field}: tail latency grew "
                f"{b:.0f}s -> {c:.0f}s — check whether the workload "
                "change was intended before refreshing the baseline"
            )
    for field in GOODPUT_WARN_FIELDS:
        if field not in base or field not in cur:
            continue
        b, c = float(base[field]), float(cur[field])
        if b > 0 and c < b * (1.0 - GOODPUT_WARN_FRACTION):
            print(
                f"  WARNING: {name}.{field}: goodput dropped "
                f"{b:.3f} -> {c:.3f} requests/s — serving quality drift, "
                "check before refreshing the baseline"
            )


def warn_on_scenario_hardware_mismatch(name: str, base: dict, cur: dict,
                                       baseline: dict,
                                       current: dict) -> None:
    """Per-scenario hardware_threads comparison (scenario field, top-level
    fallback). Only emitted when a scenario itself carries the field, so
    reports without per-scenario hardware don't repeat the top-level
    warning once per scenario."""
    if "hardware_threads" not in base and "hardware_threads" not in cur:
        return
    base_hw = base.get("hardware_threads", baseline.get("hardware_threads"))
    cur_hw = cur.get("hardware_threads", current.get("hardware_threads"))
    if base_hw is None or cur_hw is None or base_hw == cur_hw:
        return
    print(
        f"  WARNING: {name}: hardware_threads differ: baseline ran with "
        f"{base_hw}, current with {cur_hw} — this scenario's timings span "
        "different hardware"
    )


def warn_on_hardware_mismatch(baseline: dict, current: dict) -> None:
    """Warn-only top-level hardware_threads comparison: ratio warnings
    below are only as comparable as the machines that produced them."""
    base_hw = baseline.get("hardware_threads")
    cur_hw = current.get("hardware_threads")
    if base_hw is None or cur_hw is None or base_hw == cur_hw:
        return
    print(
        f"  WARNING: hardware_threads differ: baseline ran with {base_hw}, "
        f"current with {cur_hw} — speedup and RSS comparisons span "
        "different hardware, read their warnings accordingly"
    )


def compare(baseline: dict, current: dict, threshold: float,
            allow_missing: bool = False) -> list[str]:
    """Returns a list of failure messages (empty = gate passes)."""
    failures = []
    baseline_names = {s["name"] for s in baseline["scenarios"]}
    current_by_name = {s["name"]: s for s in current["scenarios"]}

    warn_on_hardware_mismatch(baseline, current)

    for cur in current["scenarios"]:
        if not cur.get("outputs_identical", False):
            failures.append(
                f"{cur['name']}: outputs_identical is false — the run no "
                "longer reproduces its reference outputs bit for bit"
            )
        if cur["name"] not in baseline_names:
            # New coverage, not a regression: warn so the committed baseline
            # gets refreshed, but let the gate pass.
            print(
                f"  WARNING: {cur['name']}: present only in the current "
                "report (new scenario) — refresh the committed baseline"
            )

    for base in baseline["scenarios"]:
        name = base["name"]
        cur = current_by_name.get(name)
        if cur is None:
            if allow_missing:
                print(
                    f"  WARNING: {name}: present in baseline but missing "
                    "from the current report (tolerated by --allow-missing)"
                )
            else:
                failures.append(f"{name}: present in baseline but missing "
                                "from the current report")
            continue
        warn_on_rss_growth(name, base, cur)
        warn_on_speedup_regression(name, base, cur)
        warn_on_serving_drift(name, base, cur, threshold)
        warn_on_scenario_hardware_mismatch(name, base, cur, baseline, current)
        failures.extend(check_latency_gates(name, base, cur, threshold))
        base_ratios = scenario_ratios(base)
        cur_ratios = scenario_ratios(cur)
        for field in base_ratios:
            if field not in cur_ratios:
                failures.append(f"{name}: timed field {field} present in "
                                "baseline but missing from the current report")
                continue
            b, c = base_ratios[field], cur_ratios[field]
            limit = b * (1.0 + threshold)
            status = "FAIL" if c > limit else "ok"
            print(
                f"  {name}.{field}: ratio {c:.3f} vs baseline {b:.3f} "
                f"(limit {limit:.3f}) [{status}]"
            )
            if c > limit:
                failures.append(
                    f"{name}: {field}/seed_engine_ms regressed "
                    f"{(c / b - 1.0) * 100.0:+.1f}% "
                    f"(ratio {c:.3f} vs baseline {b:.3f}, "
                    f"threshold {threshold * 100.0:.0f}%)"
                )
    return failures


def self_test() -> int:
    baseline = {
        "benchmark": "study_engine",
        "scenarios": [
            {
                "name": "replication_sweep_degree10",
                "seed_engine_ms": 100.0,
                "incremental_eager_ms": 40.0,
                "incremental_lazy_ms": 30.0,
                "parallel_lazy_ms": 10.0,
                "outputs_identical": True,
            }
        ],
    }

    failures = 0

    def expect(label: str, current: dict, should_pass: bool) -> None:
        nonlocal failures
        print(f"self-test: {label}")
        problems = compare(baseline, current, DEFAULT_THRESHOLD)
        passed = not problems
        if passed != should_pass:
            failures += 1
            print(f"self-test FAIL: {label}: expected "
                  f"{'pass' if should_pass else 'fail'}, got "
                  f"{'pass' if passed else problems}")

    # Identical report: passes.
    expect("identical report passes", copy.deepcopy(baseline), True)

    # The same ratios on a machine 3x slower overall: passes (timings are
    # normalized, so uniform hardware slowdown is invisible).
    slower = copy.deepcopy(baseline)
    for s in slower["scenarios"]:
        for f in ["seed_engine_ms", *TIMED_FIELDS]:
            s[f] *= 3.0
    expect("uniformly slower machine passes", slower, True)

    # A 30% injected regression on one optimized config: fails (> 25%).
    regressed = copy.deepcopy(baseline)
    regressed["scenarios"][0]["parallel_lazy_ms"] *= 1.30
    expect("30% injected regression fails", regressed, False)

    # A 10% wobble: passes (< 25% threshold).
    wobble = copy.deepcopy(baseline)
    wobble["scenarios"][0]["parallel_lazy_ms"] *= 1.10
    expect("10% wobble passes", wobble, True)

    # Broken correctness: fails even when faster.
    broken = copy.deepcopy(baseline)
    broken["scenarios"][0]["outputs_identical"] = False
    broken["scenarios"][0]["parallel_lazy_ms"] = 1.0
    expect("outputs_identical=false fails", broken, False)

    # Dropped scenario: fails.
    dropped = copy.deepcopy(baseline)
    dropped["scenarios"] = []
    expect("missing scenario fails", dropped, False)

    # A scenario only the current report has is an addition: warn, pass.
    added = copy.deepcopy(baseline)
    added["scenarios"].append({
        "name": "fault_resilience_new",
        "outputs_identical": True,
    })
    expect("current-only scenario passes with a warning", added, True)

    # ... unless its correctness booleans are broken.
    added_broken = copy.deepcopy(added)
    added_broken["scenarios"][1]["outputs_identical"] = False
    expect("current-only scenario with broken outputs fails", added_broken,
           False)

    # Correctness-only scenarios (no seed_engine_ms anchor) compare without
    # timing: matching booleans pass even when informational timings drift.
    corr_baseline = {
        "benchmark": "fault_resilience",
        "scenarios": [
            {"name": "sweep", "sweep_ms": 100.0, "outputs_identical": True}
        ],
    }
    corr_current = copy.deepcopy(corr_baseline)
    corr_current["scenarios"][0]["sweep_ms"] = 500.0
    print("self-test: correctness-only scenario ignores timing drift")
    if compare(corr_baseline, corr_current, DEFAULT_THRESHOLD):
        failures += 1
        print("self-test FAIL: correctness-only scenario should pass")
    corr_current["scenarios"][0]["outputs_identical"] = False
    print("self-test: correctness-only scenario still enforces booleans")
    if not compare(corr_baseline, corr_current, DEFAULT_THRESHOLD):
        failures += 1
        print("self-test FAIL: broken correctness-only scenario should fail")

    # --allow-missing: a baseline-only scenario (subset rerun) passes with a
    # warning instead of failing — but only under the flag.
    scale_baseline = {
        "benchmark": "scale_study",
        "scenarios": [
            {"name": "scale_100000", "outputs_identical": True,
             "peak_rss_mb": 100.0},
            {"name": "scale_1000000", "outputs_identical": True,
             "peak_rss_mb": 900.0},
        ],
    }
    subset = copy.deepcopy(scale_baseline)
    subset["scenarios"] = subset["scenarios"][:1]
    print("self-test: subset rerun passes under --allow-missing")
    if compare(scale_baseline, subset, DEFAULT_THRESHOLD,
               allow_missing=True):
        failures += 1
        print("self-test FAIL: --allow-missing should tolerate the subset")
    print("self-test: subset rerun still fails without --allow-missing")
    if not compare(scale_baseline, subset, DEFAULT_THRESHOLD):
        failures += 1
        print("self-test FAIL: missing scenario must fail by default")

    # Peak RSS is warn-only: a doubled memory envelope must not fail the
    # gate (it prints a warning for a human).
    bloated = copy.deepcopy(scale_baseline)
    bloated["scenarios"][0]["peak_rss_mb"] = 250.0
    print("self-test: peak-RSS growth warns but passes")
    if compare(scale_baseline, bloated, DEFAULT_THRESHOLD):
        failures += 1
        print("self-test FAIL: peak-RSS growth must be warn-only")

    # Speedup drift is warn-only: a parallel sweep that lost ground against
    # its own serial run warns (for a human to judge — the runner's core
    # count may simply differ) but never fails the gate.
    speedup_baseline = {
        "benchmark": "scale_study",
        "scenarios": [
            {"name": "scale_100000", "outputs_identical": True,
             "gen_ms": 500.0, "gen_pipelined_ms": 400.0,
             "sweep_serial_ms": 1000.0, "sweep_parallel_ms": 400.0,
             "sweep_reshard_ms": 420.0},
        ],
    }
    flat = copy.deepcopy(speedup_baseline)
    flat["scenarios"][0]["sweep_parallel_ms"] = 950.0  # speedup collapsed
    print("self-test: collapsed parallel speedup warns but passes")
    if compare(speedup_baseline, flat, DEFAULT_THRESHOLD):
        failures += 1
        print("self-test FAIL: speedup drift must be warn-only")
    print("self-test: speedup ratio computation")
    ratios = speedup_ratios(speedup_baseline["scenarios"][0])
    if abs(ratios["sweep_parallel_ms/sweep_serial_ms"] - 0.4) > 1e-9 or \
            abs(ratios["gen_pipelined_ms/gen_ms"] - 0.8) > 1e-9:
        failures += 1
        print(f"self-test FAIL: unexpected speedup ratios {ratios}")

    # hardware_threads drift is warn-only: a baseline from the single-core
    # container vs. a multi-core runner prints both values but passes.
    hw_baseline = copy.deepcopy(scale_baseline)
    hw_baseline["hardware_threads"] = 1
    hw_current = copy.deepcopy(scale_baseline)
    hw_current["hardware_threads"] = 8
    print("self-test: hardware_threads mismatch warns but passes")
    buf = io.StringIO()
    with contextlib.redirect_stdout(buf):
        problems = compare(hw_baseline, hw_current, DEFAULT_THRESHOLD)
    sys.stdout.write(buf.getvalue())
    if problems:
        failures += 1
        print("self-test FAIL: hardware_threads drift must be warn-only")
    if "hardware_threads differ" not in buf.getvalue() or \
            "1" not in buf.getvalue() or "8" not in buf.getvalue():
        failures += 1
        print("self-test FAIL: hardware mismatch must print both values")
    print("self-test: matching hardware_threads stays silent")
    hw_current["hardware_threads"] = 1
    buf = io.StringIO()
    with contextlib.redirect_stdout(buf):
        problems = compare(hw_baseline, hw_current, DEFAULT_THRESHOLD)
    sys.stdout.write(buf.getvalue())
    if problems or "hardware_threads differ" in buf.getvalue():
        failures += 1
        print("self-test FAIL: matching hardware must pass silently")

    # Serving latency gates: p50/p99 are deterministic simulated seconds,
    # gated directly.
    serving_baseline = {
        "benchmark": "serving_load",
        "hardware_threads": 1,
        "scenarios": [
            {"name": "serve_100000_maxav_conrep", "outputs_identical": True,
             "p50_s": 200.0, "p99_s": 90000.0, "p999_s": 90000.0,
             "goodput_rps": 0.050, "hardware_threads": 1},
        ],
    }

    def expect_serving(label: str, mutate, should_pass: bool,
                       want_warning: str | None = None) -> None:
        nonlocal failures
        current = copy.deepcopy(serving_baseline)
        mutate(current["scenarios"][0])
        print(f"self-test: {label}")
        buf = io.StringIO()
        with contextlib.redirect_stdout(buf):
            problems = compare(serving_baseline, current, DEFAULT_THRESHOLD)
        sys.stdout.write(buf.getvalue())
        passed = not problems
        if passed != should_pass:
            failures += 1
            print(f"self-test FAIL: {label}: expected "
                  f"{'pass' if should_pass else 'fail'}, got "
                  f"{'pass' if passed else problems}")
        if want_warning and want_warning not in buf.getvalue():
            failures += 1
            print(f"self-test FAIL: {label}: expected a warning mentioning "
                  f"{want_warning!r}")

    expect_serving("30% p99 latency regression fails",
                   lambda s: s.update(p99_s=90000.0 * 1.30), False)
    expect_serving("10% p50 latency wobble passes",
                   lambda s: s.update(p50_s=220.0), True)
    expect_serving("improved latency passes",
                   lambda s: s.update(p50_s=100.0, p99_s=40000.0), True)
    # Exact-zero baseline (e.g. UnconRep p50): any growth is a behavior
    # change and must fail; staying at zero passes.
    serving_baseline["scenarios"][0]["p50_s"] = 0.0
    expect_serving("any growth from an exact-zero baseline fails",
                   lambda s: s.update(p50_s=5.0), False)
    expect_serving("zero-baseline p50 with zero current passes",
                   lambda s: s.update(p50_s=0.0), True)
    serving_baseline["scenarios"][0]["p50_s"] = 200.0
    expect_serving("doubled p999 tail warns but passes",
                   lambda s: s.update(p999_s=180000.0), True,
                   want_warning="tail latency grew")
    expect_serving("halved goodput warns but passes",
                   lambda s: s.update(goodput_rps=0.020), True,
                   want_warning="goodput dropped")
    expect_serving("per-scenario hardware_threads mismatch warns but passes",
                   lambda s: s.update(hardware_threads=8), True,
                   want_warning="serve_100000_maxav_conrep: hardware_threads")

    if failures:
        print(f"self-test: {failures} case(s) failed")
        return 1
    print("self-test OK (25 cases)")
    return 0


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", type=pathlib.Path,
                        help="committed baseline BENCH_*.json")
    parser.add_argument("--current", type=pathlib.Path,
                        help="freshly produced BENCH_*.json")
    parser.add_argument("--threshold", type=float, default=DEFAULT_THRESHOLD,
                        help="allowed relative ratio regression "
                             "(default %(default)s)")
    parser.add_argument("--allow-missing", action="store_true",
                        help="tolerate scenarios present only in the "
                             "baseline (CI reruns a subset of a full-run "
                             "baseline, e.g. BENCH_scale.json)")
    parser.add_argument("--self-test", action="store_true",
                        help="verify the gate against synthetic reports")
    args = parser.parse_args(argv)

    if args.self_test:
        return self_test()
    if not args.baseline or not args.current:
        parser.error("--baseline and --current are required "
                     "(or use --self-test)")

    baseline = load_report(args.baseline)
    current = load_report(args.current)
    print(f"baseline: {args.baseline}")
    print(f"current:  {args.current}")
    failures = compare(baseline, current, args.threshold,
                       allow_missing=args.allow_missing)
    for msg in failures:
        print(f"FAIL: {msg}")
    if failures:
        print(f"check_bench_regression: {len(failures)} failure(s)")
        return 1
    print("check_bench_regression: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
