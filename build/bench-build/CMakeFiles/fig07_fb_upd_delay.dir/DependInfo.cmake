
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig07_fb_upd_delay.cpp" "bench-build/CMakeFiles/fig07_fb_upd_delay.dir/fig07_fb_upd_delay.cpp.o" "gcc" "bench-build/CMakeFiles/fig07_fb_upd_delay.dir/fig07_fb_upd_delay.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench-build/CMakeFiles/dosn_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dosn_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dosn_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/dosn_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/dosn_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/dosn_core.dir/DependInfo.cmake"
  "/root/repo/build/src/onlinetime/CMakeFiles/dosn_onlinetime.dir/DependInfo.cmake"
  "/root/repo/build/src/placement/CMakeFiles/dosn_placement.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/dosn_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/interval/CMakeFiles/dosn_interval.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/dosn_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dosn_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
