// Figure 4: Facebook, UnconRep — availability vs replication degree for
// the FixedLength 2h and 8h panels (the paper shows only these two).
#include "common.hpp"

int main() {
  using namespace dosn;
  bench::figure_banner(
      "fig04", "Facebook-UnconRep: Availability",
      "with unconstrained placement achievable availability is higher than "
      "ConRep (Fig 3c/3d): replicas are selected regardless of online-time "
      "connectivity");
  const auto env = bench::load_env("facebook");

  sim::Study study(env.dataset, env.seed);
  struct Panel {
    const char* suffix;
    double hours;
  };
  for (const Panel panel : {Panel{"a_fixed2h", 2.0}, Panel{"b_fixed8h", 8.0}}) {
    const auto sweep = study.replication_sweep(
        onlinetime::ModelKind::kFixedLength, {.window_hours = panel.hours},
        placement::Connectivity::kUnconRep, env.options());
    bench::report_metric(std::string("fig04") + panel.suffix,
                         "Fig 4: FB UnconRep availability", sweep,
                         sim::Metric::kAvailability);
  }
  return 0;
}
