// Request-level serving benchmark: latency SLOs under load, written to
// BENCH_serving.json.
//
// Per population size (synth scale presets) the harness builds the scale
// study input once, then runs the serving study (src/serve) over a capped
// cohort prefix for four configurations:
//
//   * maxav_conrep    — MaxAv placement, connected replicas, no faults;
//   * maxav_unconrep  — MaxAv against the persistent relay (plus a relay
//                       outage window, exercising the fallback path);
//   * random_conrep   — Random placement baseline;
//   * maxav_stressed  — MaxAv/ConRep under a half-intensity churn plan
//                       with a 2 s DECENT-style crypto tax per op.
//
// Every configuration runs at threads 1 (serial reference), 2, 4 and 8 on
// the work-stealing pool; the four ServingReports must agree bit for bit
// (outputs_identical, enforced by a nonzero exit code) — the request-log
// checksum is the parallel-correctness probe. Reported per scenario:
// p50/p99/p999 over all served requests, per-kind p50/p99, goodput
// (requests inside the SLO per simulated second), the SLO-miss fraction,
// per-thread-count wall times, and peak RSS. hardware_threads and an
// `oversubscribed` flag are recorded per scenario so a single-core CI
// runner's timings are not mistaken for a parallel-scaling measurement.
//
// Environment knobs: DOSN_SERVE_USERS (comma-separated population sizes,
// default "100000,1000000" — CI smoke runs just 100000), DOSN_BENCH_SEED,
// DOSN_OBS.
#include <array>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common.hpp"
#include "obs/export.hpp"
#include "serve/serving.hpp"
#include "synth/scale.hpp"
#include "util/strings.hpp"
#include "util/thread_pool.hpp"

namespace {

using Clock = std::chrono::steady_clock;
using dosn::interval::Seconds;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

std::vector<std::size_t> serve_users() {
  std::string spec = "100000,1000000";
  // NOLINTNEXTLINE(concurrency-mt-unsafe) — read once at startup.
  if (const char* s = std::getenv("DOSN_SERVE_USERS"); s && *s) spec = s;
  std::vector<std::size_t> out;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    const std::size_t comma = spec.find(',', pos);
    const std::string tok =
        spec.substr(pos, comma == std::string::npos ? comma : comma - pos);
    if (!tok.empty())
      out.push_back(static_cast<std::size_t>(dosn::util::parse_i64(tok)));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

/// The serving configurations the benchmark sweeps (mixed policies and
/// connectivity regimes, per the serving-layer design).
struct ServeCase {
  std::string name;
  dosn::placement::PolicyKind policy;
  dosn::placement::Connectivity connectivity;
  double fault_intensity = 0.0;
  Seconds crypto_op_cost = 0;
};

std::vector<ServeCase> serve_cases() {
  using dosn::placement::Connectivity;
  using dosn::placement::PolicyKind;
  return {
      {"maxav_conrep", PolicyKind::kMaxAv, Connectivity::kConRep, 0.0, 0},
      {"maxav_unconrep", PolicyKind::kMaxAv, Connectivity::kUnconRep, 0.0, 0},
      {"random_conrep", PolicyKind::kRandom, Connectivity::kConRep, 0.0, 0},
      {"maxav_stressed", PolicyKind::kMaxAv, Connectivity::kConRep, 0.5, 2},
  };
}

/// Churn-plus-relay base plan the stressed case scales down; the relay
/// window also exercises the UnconRep fallback when intensity > 0.
dosn::net::FaultPlan stress_plan(std::uint64_t seed) {
  dosn::net::FaultPlan plan;
  plan.seed = seed ^ 0x5eedf417ULL;
  plan.session_no_show = 0.25;
  plan.session_truncate = 0.25;
  plan.truncate_max_fraction = 0.6;
  plan.relay_outages.push_back(
      {dosn::interval::kDaySeconds, 2 * dosn::interval::kDaySeconds});
  return plan;
}

struct Scenario {
  std::string name;
  std::size_t users = 0;
  std::string policy;
  std::string connectivity;
  double fault_intensity = 0.0;
  Seconds crypto_op_cost = 0;
  std::size_t served_users = 0;
  std::size_t cohort_degree = 0;
  std::uint64_t requests = 0;
  std::uint64_t unserved = 0;
  std::uint64_t slo_misses = 0;
  double slo_miss_fraction = 0.0;
  double goodput_rps = 0.0;
  Seconds p50_s = 0, p99_s = 0, p999_s = 0;
  Seconds read_p50_s = 0, read_p99_s = 0;
  Seconds feed_p50_s = 0, feed_p99_s = 0;
  Seconds write_p50_s = 0, write_p99_s = 0;
  std::array<double, 4> run_ms{};  // threads 1, 2, 4, 8
  std::uint64_t checksum = 0;
  bool identical = false;
  double peak_rss_mb = 0.0;
};

}  // namespace

int main() {
  const std::uint64_t seed = dosn::bench::bench_seed();
  constexpr std::array<std::size_t, 4> kThreadCounts{1, 2, 4, 8};
  constexpr std::size_t kServedCap = 2000;

  std::vector<Scenario> scenarios;
  bool all_identical = true;

  for (const std::size_t users : serve_users()) {
    dosn::synth::ScaleInputConfig input_config;
    dosn::synth::ScaleOptions opts;
    opts.users = users;
    input_config.preset = dosn::synth::scale_preset(opts);
    const auto gen_start = Clock::now();
    const auto input = dosn::synth::build_scale_study_input(input_config, seed);
    std::printf("serve N=%-8zu input built in %.0fms (cohort %zu, deg %zu)\n",
                users, ms_since(gen_start), input.cohort.size(),
                input.cohort_degree);

    for (const auto& c : serve_cases()) {
      dosn::serve::ServingConfig config;
      config.policy = c.policy;
      config.connectivity = c.connectivity;
      config.replicas = 5;
      config.served_users = kServedCap;
      config.crypto_op_cost = c.crypto_op_cost;
      if (c.fault_intensity > 0.0)
        config.faults = dosn::net::scaled(stress_plan(seed), c.fault_intensity);
      else if (c.connectivity == dosn::placement::Connectivity::kUnconRep)
        config.faults.relay_outages = stress_plan(seed).relay_outages;

      Scenario s;
      s.name = "serve_" + std::to_string(users) + "_" + c.name;
      s.users = users;
      s.policy = to_string(c.policy);
      s.connectivity = to_string(c.connectivity);
      s.fault_intensity = c.fault_intensity;
      s.crypto_op_cost = c.crypto_op_cost;
      s.cohort_degree = input.cohort_degree;

      dosn::serve::ServingReport reference;
      s.identical = true;
      for (std::size_t i = 0; i < kThreadCounts.size(); ++i) {
        const std::size_t threads = kThreadCounts[i];
        const auto start = Clock::now();
        dosn::serve::ServingReport report;
        if (threads == 1) {
          report = run_serving_study(input.dataset, input.schedules,
                                     input.cohort, seed, config);
        } else {
          dosn::util::ThreadPool pool(
              dosn::util::RuntimeOptions{.threads = threads});
          report = run_serving_study(input.dataset, input.schedules,
                                     input.cohort, seed, config, &pool);
        }
        s.run_ms[i] = ms_since(start);
        if (threads == 1)
          reference = report;
        else
          s.identical &= report == reference;
      }

      s.served_users = reference.served_users;
      s.requests = reference.requests;
      s.unserved = reference.unserved;
      s.slo_misses = reference.slo_misses;
      s.slo_miss_fraction = reference.slo_miss_fraction();
      s.goodput_rps = reference.goodput_rps();
      s.p50_s = reference.latency.quantile(0.50);
      s.p99_s = reference.latency.quantile(0.99);
      s.p999_s = reference.latency.quantile(0.999);
      s.read_p50_s = reference.read.latency.quantile(0.50);
      s.read_p99_s = reference.read.latency.quantile(0.99);
      s.feed_p50_s = reference.feed.latency.quantile(0.50);
      s.feed_p99_s = reference.feed.latency.quantile(0.99);
      s.write_p50_s = reference.write.latency.quantile(0.50);
      s.write_p99_s = reference.write.latency.quantile(0.99);
      s.checksum = reference.request_log_checksum;
      all_identical &= s.identical;
      s.peak_rss_mb = dosn::bench::peak_rss_mb();

      std::printf(
          "  %-16s p50=%llds p99=%llds p999=%llds  goodput=%.3frps  "
          "miss=%.3f  unserved=%llu/%llu  t1=%.0fms t2=%.0fms t4=%.0fms "
          "t8=%.0fms  identical=%s\n",
          c.name.c_str(), static_cast<long long>(s.p50_s),
          static_cast<long long>(s.p99_s), static_cast<long long>(s.p999_s),
          s.goodput_rps, s.slo_miss_fraction,
          static_cast<unsigned long long>(s.unserved),
          static_cast<unsigned long long>(s.requests), s.run_ms[0],
          s.run_ms[1], s.run_ms[2], s.run_ms[3],
          s.identical ? "yes" : "NO");
      scenarios.push_back(s);
    }
  }

  if (dosn::obs::enabled()) {
    std::printf("\nobservability snapshot:\n%s\n",
                dosn::obs::to_table(dosn::obs::Registry::global().snapshot())
                    .c_str());
  }

  // Top-level "threads" is the configured maximum across the per-scenario
  // runs (the per-thread-count timings carry the detail).
  dosn::bench::write_bench_json(
      "BENCH_serving.json", "serving_load", seed, kThreadCounts.back(),
      [&](dosn::util::JsonWriter& w) {
        dosn::bench::write_hardware_fields(w);
        w.key("scenarios");
        w.begin_array();
        for (const auto& s : scenarios) {
          w.begin_object();
          w.field("name", s.name);
          w.field("users", static_cast<std::uint64_t>(s.users));
          w.field("policy", s.policy);
          w.field("connectivity", s.connectivity);
          w.field("fault_intensity", s.fault_intensity);
          w.field("crypto_op_cost_s",
                  static_cast<std::uint64_t>(s.crypto_op_cost));
          w.field("served_users", static_cast<std::uint64_t>(s.served_users));
          w.field("cohort_degree",
                  static_cast<std::uint64_t>(s.cohort_degree));
          w.field("requests", s.requests);
          w.field("unserved", s.unserved);
          w.field("slo_misses", s.slo_misses);
          w.field("slo_miss_fraction", s.slo_miss_fraction);
          w.field("goodput_rps", s.goodput_rps);
          w.field("p50_s", static_cast<std::uint64_t>(s.p50_s));
          w.field("p99_s", static_cast<std::uint64_t>(s.p99_s));
          w.field("p999_s", static_cast<std::uint64_t>(s.p999_s));
          w.field("read_p50_s", static_cast<std::uint64_t>(s.read_p50_s));
          w.field("read_p99_s", static_cast<std::uint64_t>(s.read_p99_s));
          w.field("feed_p50_s", static_cast<std::uint64_t>(s.feed_p50_s));
          w.field("feed_p99_s", static_cast<std::uint64_t>(s.feed_p99_s));
          w.field("write_p50_s", static_cast<std::uint64_t>(s.write_p50_s));
          w.field("write_p99_s", static_cast<std::uint64_t>(s.write_p99_s));
          w.field("run_t1_ms", s.run_ms[0]);
          w.field("run_t2_ms", s.run_ms[1]);
          w.field("run_t4_ms", s.run_ms[2]);
          w.field("run_t8_ms", s.run_ms[3]);
          dosn::bench::write_hardware_fields(w, kThreadCounts.back());
          w.field("checksum", s.checksum);
          w.field("outputs_identical", s.identical);
          w.field("peak_rss_mb", s.peak_rss_mb);
          w.end_object();
        }
        w.end_array();
      });
  std::printf("wrote BENCH_serving.json\n");

  return all_identical ? 0 : 1;
}
