// Storage-regime ablation: MaxAv+ConRep vs. DHT vs. socially-aware DHT
// vs. super-peer storekeepers, written to BENCH_storage_regimes.json.
//
// Per population size (synth scale presets, default 100000 and 1000000
// users) the harness builds the scale study input once and runs the
// serving study (src/serve) for four storage regimes
//
//   * maxav_conrep — the paper's regime: MaxAv friend replication under
//     ConRep (the baseline every alternative is compared against);
//   * plain_dht    — profiles on a Chord ring over all users, plain
//     per-user keys (net/social_dht with the remap off);
//   * social_dht   — the same ring with the friend-clustered key remap:
//     cluster-mates share owner arcs, so feed fan-in resolves many
//     friends through one contacted owner (replica-locality hits);
//   * super_peer   — MaxAv selection extended by SuperNova-style
//     volunteer storekeepers for groups below the availability target;
//
// under three fault scenarios: zero (no fault ever fires), churn_burst
// (a correlated no-show storm on mild background churn) and
// regional_outage (one region down for two days on the same base churn).
// Reported per (population, regime, scenario): the four comparison axes —
// delivered availability (realized group-union online fraction), access
// delay (p50/p99 over all served requests), replication degree (group
// members beyond the owner, storekeepers included) and mean lookup hops
// (with the replica-locality hit count) — plus unserved counts and
// per-thread-count wall times.
//
// Every cell runs at threads {1, 2, 4, 8}; the four ServingReports must
// agree bit for bit (outputs_identical — the whole-report equality, not
// just the request-log checksum). The harness additionally asserts, and
// exits nonzero when violated:
//
//   * social_dht mean lookup hops <= plain_dht mean lookup hops, and the
//     remap produces replica-locality hits — the clustering pays;
//   * super_peer delivered availability >= maxav_conrep and unserved
//     requests <= maxav_conrep, per scenario — the storekeeper tier only
//     widens the serving surface.
//
// Environment knobs: DOSN_REGIME_USERS (comma-separated population
// sizes, default "100000,1000000" — CI smoke runs just 100000),
// DOSN_BENCH_SEED, DOSN_OBS.
#include <array>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common.hpp"
#include "obs/export.hpp"
#include "serve/serving.hpp"
#include "synth/scale.hpp"
#include "util/strings.hpp"
#include "util/thread_pool.hpp"

namespace {

using Clock = std::chrono::steady_clock;
using dosn::interval::Seconds;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

std::vector<std::size_t> regime_users() {
  std::string spec = "100000,1000000";
  // NOLINTNEXTLINE(concurrency-mt-unsafe) — read once at startup.
  if (const char* s = std::getenv("DOSN_REGIME_USERS"); s && *s) spec = s;
  std::vector<std::size_t> out;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    const std::size_t comma = spec.find(',', pos);
    const std::string tok =
        spec.substr(pos, comma == std::string::npos ? comma : comma - pos);
    if (!tok.empty())
      out.push_back(static_cast<std::size_t>(dosn::util::parse_i64(tok)));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

/// The three fault scenarios every regime is measured under. The non-zero
/// classes layer a composite window (net/scenario.hpp text form) on mild
/// background churn — the same shapes the resilience bench sweeps.
struct FaultCase {
  std::string name;
  std::string spec;  // empty = the zero plan
};

std::vector<FaultCase> fault_cases() {
  return {
      {"zero", ""},
      {"churn_burst",
       "churn_burst start=518400 end=691200 no_show=0.8 participation=0.9\n"},
      {"regional_outage",
       "regional_outage regions=3 region=0 start=259200 end=432000 "
       "participation=1\n"},
  };
}

dosn::net::FaultPlan fault_plan(std::uint64_t seed, const FaultCase& f) {
  dosn::net::FaultPlan plan;
  if (f.spec.empty()) return plan;  // the zero plan
  plan.seed = seed ^ 0x5ce9a410ULL;
  plan.session_no_show = 0.15;
  plan.session_truncate = 0.15;
  plan.truncate_max_fraction = 0.5;
  plan.scenario = dosn::net::parse_scenario(f.spec);
  return plan;
}

/// One storage regime under test. Every case keeps MaxAv/ConRep and the
/// replica budget 5 so the regimes differ only in where profiles live.
struct RegimeCase {
  std::string name;
  dosn::placement::StorageRegime regime;
  bool socially_aware = false;
};

std::vector<RegimeCase> regime_cases() {
  using dosn::placement::StorageRegime;
  return {
      {"maxav_conrep", StorageRegime::kReplicaGroup, false},
      {"plain_dht", StorageRegime::kSocialDht, false},
      {"social_dht", StorageRegime::kSocialDht, true},
      {"super_peer", StorageRegime::kSuperPeer, false},
  };
}

dosn::serve::ServingConfig regime_config(const RegimeCase& r,
                                         const dosn::net::FaultPlan& plan,
                                         std::size_t served_cap) {
  dosn::serve::ServingConfig config;
  config.policy = dosn::placement::PolicyKind::kMaxAv;
  config.connectivity = dosn::placement::Connectivity::kConRep;
  config.replicas = 5;
  config.served_users = served_cap;
  config.faults = plan;
  config.regime = r.regime;
  // Ring knobs: the replica budget matched to the group regimes, a
  // per-hop routing tax small against the SLO but visible in p50.
  config.social_dht.replication = 5;
  config.social_dht.socially_aware = r.socially_aware;
  config.social_dht.cluster_cap = 16;
  config.social_dht.hop_cost = 5;
  // Storekeeper knobs from the Sporadic coverage distribution (median
  // ~0.06, p95 ~0.21): the threshold admits roughly the top 5% of users
  // as volunteers, and the target is far above what a friend group
  // reaches on its own, so the tier visibly steps in.
  config.super_peer.volunteer_threshold = 0.2;
  config.super_peer.target_availability = 0.5;
  config.super_peer.max_storekeepers = 8;
  return config;
}

struct Cell {
  std::string name;
  std::size_t users = 0;
  std::string regime;
  std::string scenario;
  std::size_t served_users = 0;
  double availability = 0.0;
  double replication_degree = 0.0;
  double mean_lookup_hops = 0.0;
  std::uint64_t lookups = 0;
  std::uint64_t locality_hits = 0;
  std::uint64_t storekeepers = 0;
  std::uint64_t requests = 0;
  std::uint64_t unserved = 0;
  double slo_miss_fraction = 0.0;
  Seconds p50_s = 0, p99_s = 0;
  std::array<double, 4> run_ms{};  // threads 1, 2, 4, 8
  std::uint64_t checksum = 0;
  bool identical = false;
};

/// Property verdicts in the shape tools/check_bench_regression.py
/// consumes (one outputs_identical boolean per named check).
struct GateCheck {
  std::string name;
  bool ok = false;
};

}  // namespace

int main() {
  const std::uint64_t seed = dosn::bench::bench_seed();
  constexpr std::array<std::size_t, 4> kThreadCounts{1, 2, 4, 8};
  constexpr std::size_t kServedCap = 500;

  std::vector<Cell> cells;
  std::vector<GateCheck> checks;
  bool all_ok = true;

  for (const std::size_t users : regime_users()) {
    dosn::synth::ScaleInputConfig input_config;
    dosn::synth::ScaleOptions opts;
    opts.users = users;
    input_config.preset = dosn::synth::scale_preset(opts);
    const auto gen_start = Clock::now();
    const auto input = dosn::synth::build_scale_study_input(input_config, seed);
    std::printf("regimes N=%-8zu input built in %.0fms (cohort %zu, deg %zu)\n",
                users, ms_since(gen_start), input.cohort.size(),
                input.cohort_degree);

    // cells[fault][regime] indices into `cells` for the property checks.
    std::vector<std::vector<std::size_t>> index;

    for (const auto& f : fault_cases()) {
      index.emplace_back();
      const auto plan = fault_plan(seed, f);
      for (const auto& r : regime_cases()) {
        const auto config = regime_config(r, plan, kServedCap);

        Cell c;
        c.name = "regimes_" + std::to_string(users) + "_" + r.name + "_" +
                 f.name;
        c.users = users;
        c.regime = r.name;
        c.scenario = f.name;

        dosn::serve::ServingReport reference;
        c.identical = true;
        for (std::size_t i = 0; i < kThreadCounts.size(); ++i) {
          const std::size_t threads = kThreadCounts[i];
          const auto start = Clock::now();
          dosn::serve::ServingReport report;
          if (threads == 1) {
            report = run_serving_study(input.dataset, input.schedules,
                                       input.cohort, seed, config);
          } else {
            dosn::util::ThreadPool pool(
                dosn::util::RuntimeOptions{.threads = threads});
            report = run_serving_study(input.dataset, input.schedules,
                                       input.cohort, seed, config, &pool);
          }
          c.run_ms[i] = ms_since(start);
          if (threads == 1)
            reference = report;
          else
            c.identical &= report == reference;
        }

        c.served_users = reference.served_users;
        c.availability = reference.regime.availability(reference.horizon);
        c.replication_degree = reference.regime.replication_degree();
        c.mean_lookup_hops = reference.regime.mean_lookup_hops();
        c.lookups = reference.regime.lookups;
        c.locality_hits = reference.regime.locality_hits;
        c.storekeepers = reference.regime.storekeepers;
        c.requests = reference.requests;
        c.unserved = reference.unserved;
        c.slo_miss_fraction = reference.slo_miss_fraction();
        c.p50_s = reference.latency.quantile(0.50);
        c.p99_s = reference.latency.quantile(0.99);
        c.checksum = reference.request_log_checksum;
        all_ok &= c.identical;

        std::printf(
            "  %-13s %-15s avail=%.3f repl=%.2f hops=%.2f local=%llu "
            "keep=%llu p50=%llds p99=%llds miss=%.3f unserved=%llu/%llu "
            "t1=%.0fms identical=%s\n",
            r.name.c_str(), f.name.c_str(), c.availability,
            c.replication_degree, c.mean_lookup_hops,
            static_cast<unsigned long long>(c.locality_hits),
            static_cast<unsigned long long>(c.storekeepers),
            static_cast<long long>(c.p50_s), static_cast<long long>(c.p99_s),
            c.slo_miss_fraction, static_cast<unsigned long long>(c.unserved),
            static_cast<unsigned long long>(c.requests), c.run_ms[0],
            c.identical ? "yes" : "NO");

        index.back().push_back(cells.size());
        cells.push_back(c);
      }
    }

    // The headline comparisons, per scenario: regimes are rows 0..3 of
    // each index entry in regime_cases() order.
    const auto faults = fault_cases();
    for (std::size_t fi = 0; fi < faults.size(); ++fi) {
      const Cell& conrep = cells[index[fi][0]];
      const Cell& plain = cells[index[fi][1]];
      const Cell& social = cells[index[fi][2]];
      const Cell& super = cells[index[fi][3]];
      const std::string tag =
          std::to_string(users) + "_" + faults[fi].name;

      const bool hops_ok =
          social.mean_lookup_hops <= plain.mean_lookup_hops &&
          social.locality_hits > 0;
      checks.push_back({"social_hops_le_plain_" + tag, hops_ok});
      if (!hops_ok)
        std::printf("FAIL: social_dht hops %.3f > plain %.3f (or no "
                    "locality hits) [%s]\n",
                    social.mean_lookup_hops, plain.mean_lookup_hops,
                    tag.c_str());

      const bool super_ok = super.availability >= conrep.availability &&
                            super.unserved <= conrep.unserved;
      checks.push_back({"superpeer_ge_conrep_" + tag, super_ok});
      if (!super_ok)
        std::printf("FAIL: super_peer avail=%.3f unserved=%llu vs conrep "
                    "avail=%.3f unserved=%llu [%s]\n",
                    super.availability,
                    static_cast<unsigned long long>(super.unserved),
                    conrep.availability,
                    static_cast<unsigned long long>(conrep.unserved),
                    tag.c_str());
      all_ok &= hops_ok && super_ok;
    }
  }

  if (dosn::obs::enabled()) {
    std::printf("\nobservability snapshot:\n%s\n",
                dosn::obs::to_table(dosn::obs::Registry::global().snapshot())
                    .c_str());
  }

  dosn::bench::write_bench_json(
      "BENCH_storage_regimes.json", "ablation_storage_regimes", seed,
      kThreadCounts.back(), [&](dosn::util::JsonWriter& w) {
        w.field("served_users", static_cast<std::uint64_t>(kServedCap));
        dosn::bench::write_hardware_fields(w, kThreadCounts.back());
        w.key("scenarios");
        w.begin_array();
        for (const auto& c : cells) {
          w.begin_object();
          w.field("name", c.name);
          w.field("users", static_cast<std::uint64_t>(c.users));
          w.field("regime", c.regime);
          w.field("fault_scenario", c.scenario);
          w.field("served_users", static_cast<std::uint64_t>(c.served_users));
          w.field("availability", c.availability);
          w.field("replication_degree", c.replication_degree);
          w.field("mean_lookup_hops", c.mean_lookup_hops);
          w.field("lookups", c.lookups);
          w.field("locality_hits", c.locality_hits);
          w.field("storekeepers", c.storekeepers);
          w.field("requests", c.requests);
          w.field("unserved", c.unserved);
          w.field("slo_miss_fraction", c.slo_miss_fraction);
          w.field("p50_s", static_cast<std::uint64_t>(c.p50_s));
          w.field("p99_s", static_cast<std::uint64_t>(c.p99_s));
          w.field("run_t1_ms", c.run_ms[0]);
          w.field("run_t2_ms", c.run_ms[1]);
          w.field("run_t4_ms", c.run_ms[2]);
          w.field("run_t8_ms", c.run_ms[3]);
          w.field("checksum", c.checksum);
          w.field("outputs_identical", c.identical);
          w.end_object();
        }
        for (const auto& g : checks) {
          w.begin_object();
          w.field("name", g.name);
          w.field("outputs_identical", g.ok);
          w.end_object();
        }
        w.end_array();
        w.field("peak_rss_mb", dosn::bench::peak_rss_mb());
      });
  std::printf("\nwrote BENCH_storage_regimes.json (%s)\n",
              all_ok ? "all checks passed" : "CHECKS FAILED");
  return all_ok ? 0 : 1;
}
