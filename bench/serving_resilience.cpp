// Resilient-serving benchmark: composite fault scenarios vs. the
// resilience policy, written to BENCH_serving_resilience.json.
//
// On one population (synth scale preset, default 100000 users) the
// harness sweeps the serving study over
//
//   scenario classes — regional_outage, flash_crowd, churn_burst and
//     composite (all three), each parsed from its text spec
//     (net/scenario.hpp) and layered on a mild churn base plan;
//   intensities      — net::scaled at {0, 1/3, 2/3, 1}: realizations
//     nest, so degradation curves are exactly monotone;
//   policies         — naive (zero ResiliencePolicy) vs. resilient
//     (hedged reads + stale failover + feed degradation + retries).
//
// Reported per (class, policy, intensity): p50/p99/p999, SLO-miss
// fraction, feed coverage mean, and the retry/hedge/stale/degraded
// effort counters. The harness *asserts* the two headline properties and
// exits nonzero when either fails:
//
//   * slo_misses is monotone nondecreasing in intensity per
//     (class, policy) — the nesting guarantee made observable;
//   * resilient slo_misses < naive slo_misses at every intensity > 0 —
//     the policy strictly helps under every composite scenario.
//
// A zero-plan identity probe then re-runs the BENCH_serving.json
// maxav_conrep and maxav_unconrep configurations with the full
// resilience policy enabled over threads {1, 2, 4, 8}: every mechanism
// is formulated as an alternative arrival no earlier than the primary
// under the zero plan, so the request-log checksums must reproduce the
// committed naive ones bit for bit (checked in-process against the
// serial naive run; outputs_identical covers the thread sweep).
//
// Environment knobs: DOSN_SERVE_USERS (population, first entry used,
// default 100000), DOSN_BENCH_SEED, DOSN_OBS.
#include <array>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common.hpp"
#include "obs/export.hpp"
#include "serve/serving.hpp"
#include "synth/scale.hpp"
#include "util/strings.hpp"
#include "util/thread_pool.hpp"

namespace {

using Clock = std::chrono::steady_clock;
using dosn::interval::Seconds;
using dosn::interval::kDaySeconds;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

std::size_t serve_users() {
  std::size_t users = 100000;
  // NOLINTNEXTLINE(concurrency-mt-unsafe) — read once at startup.
  if (const char* s = std::getenv("DOSN_SERVE_USERS"); s && *s) {
    const std::string spec(s);
    const std::string tok = spec.substr(0, spec.find(','));
    if (!tok.empty())
      users = static_cast<std::size_t>(dosn::util::parse_i64(tok));
  }
  return users;
}

/// The composite scenario classes, as the text specs the parser accepts
/// (member index space: owner 0 plus 5 replicas, so regions=3 partitions
/// the group {0,3},{1,4},{2,5} and region 0 takes the owner down too).
struct ScenarioClass {
  std::string name;
  std::string spec;
};

std::vector<ScenarioClass> scenario_classes() {
  const std::string regional =
      "regional_outage regions=3 region=0 start=259200 end=432000 "
      "participation=1\n";
  const std::string flash =
      "flash_crowd start=345600 end=432000 load_multiplier=4\n";
  const std::string churn =
      "churn_burst start=518400 end=691200 no_show=0.8 participation=0.9\n";
  return {
      {"regional_outage", regional},
      {"flash_crowd", flash},
      {"churn_burst", churn},
      {"composite", regional + flash + churn},
  };
}

/// Mild background churn every class rides on; the scenario windows are
/// the composite events layered on top.
dosn::net::FaultPlan base_plan(std::uint64_t seed, const std::string& spec) {
  dosn::net::FaultPlan plan;
  plan.seed = seed ^ 0x5ce9a410ULL;
  plan.session_no_show = 0.15;
  plan.session_truncate = 0.15;
  plan.truncate_max_fraction = 0.5;
  plan.scenario = dosn::net::parse_scenario(spec);
  return plan;
}

/// The full resilience policy under test (every mechanism on).
dosn::serve::ResiliencePolicy resilient_policy() {
  dosn::serve::ResiliencePolicy p;
  p.hedged_reads = true;
  p.stale_failover = true;
  p.degrade_feeds = true;
  p.deadline = 3600;
  return p;
}

struct Cell {
  std::string name;
  std::string scenario;
  std::string policy;
  double intensity = 0.0;
  std::uint64_t requests = 0;
  std::uint64_t unserved = 0;
  std::uint64_t slo_misses = 0;
  double slo_miss_fraction = 0.0;
  Seconds p50_s = 0, p99_s = 0, p999_s = 0;
  double feed_coverage_mean = 1.0;
  std::uint64_t retries = 0;
  std::uint64_t hedges = 0;
  std::uint64_t hedge_wins = 0;
  std::uint64_t stale_served = 0;
  std::uint64_t degraded_feeds = 0;
  double run_ms = 0.0;
  std::uint64_t checksum = 0;
};

struct Probe {
  std::string name;
  std::uint64_t naive_checksum = 0;
  std::uint64_t resilient_checksum = 0;
  bool identical_across_threads = false;
  bool matches_naive = false;
};

// Correctness verdicts in the shape tools/check_bench_regression.py
// consumes: one entry per (scenario class x policy) whose
// outputs_identical folds the monotone-degradation and
// resilient-below-naive assertions, plus one per zero-plan probe. No
// seed_engine_ms anchor, so the gate enforces only the booleans and
// treats every timing in cells[] as informational.
struct GateScenario {
  std::string name;
  bool ok = false;
};

}  // namespace

int main() {
  const std::uint64_t seed = dosn::bench::bench_seed();
  const std::size_t users = serve_users();
  constexpr std::array<double, 4> kIntensities{0.0, 1.0 / 3, 2.0 / 3, 1.0};
  constexpr std::size_t kSweepCap = 1000;
  constexpr std::size_t kProbeCap = 2000;
  constexpr std::array<std::size_t, 4> kThreadCounts{1, 2, 4, 8};

  dosn::synth::ScaleInputConfig input_config;
  dosn::synth::ScaleOptions opts;
  opts.users = users;
  input_config.preset = dosn::synth::scale_preset(opts);
  const auto gen_start = Clock::now();
  const auto input = dosn::synth::build_scale_study_input(input_config, seed);
  std::printf("resilience N=%-8zu input built in %.0fms (cohort %zu)\n",
              users, ms_since(gen_start), input.cohort.size());

  const auto run_cell = [&](const dosn::serve::ServingConfig& config) {
    return dosn::serve::run_serving_study(input.dataset, input.schedules,
                                          input.cohort, seed, config);
  };

  bool ok = true;
  std::vector<Cell> cells;
  std::vector<GateScenario> gate_scenarios;
  for (const auto& sc : scenario_classes()) {
    const auto plan = base_plan(seed, sc.spec);
    // Per (policy) the misses at the previous intensity — the
    // monotonicity check rides the sweep.
    std::uint64_t prev_naive = 0, prev_resilient = 0;
    bool naive_curve_ok = true, resilient_curve_ok = true;
    for (std::size_t ii = 0; ii < kIntensities.size(); ++ii) {
      const double intensity = kIntensities[ii];
      std::uint64_t naive_misses = 0;
      for (const bool resilient : {false, true}) {
        dosn::serve::ServingConfig config;
        config.policy = dosn::placement::PolicyKind::kMaxAv;
        config.connectivity = dosn::placement::Connectivity::kConRep;
        config.replicas = 5;
        config.served_users = kSweepCap;
        config.faults = dosn::net::scaled(plan, intensity);
        if (resilient) config.resilience = resilient_policy();

        const auto start = Clock::now();
        const auto report = run_cell(config);

        Cell c;
        c.scenario = sc.name;
        c.policy = resilient ? "resilient" : "naive";
        c.name = sc.name + "_" + c.policy + "_i" + std::to_string(ii);
        c.intensity = intensity;
        c.requests = report.requests;
        c.unserved = report.unserved;
        c.slo_misses = report.slo_misses;
        c.slo_miss_fraction = report.slo_miss_fraction();
        c.p50_s = report.latency.quantile(0.50);
        c.p99_s = report.latency.quantile(0.99);
        c.p999_s = report.latency.quantile(0.999);
        c.feed_coverage_mean = report.resilience.feed_coverage_mean();
        c.retries = report.resilience.retries;
        c.hedges = report.resilience.hedges;
        c.hedge_wins = report.resilience.hedge_wins;
        c.stale_served = report.resilience.stale_served;
        c.degraded_feeds = report.resilience.degraded_feeds;
        c.run_ms = ms_since(start);
        c.checksum = report.request_log_checksum;

        std::uint64_t& prev = resilient ? prev_resilient : prev_naive;
        bool& curve_ok = resilient ? resilient_curve_ok : naive_curve_ok;
        if (ii > 0 && c.slo_misses < prev) {
          std::printf("FAIL %s: slo_misses %llu < previous intensity %llu\n",
                      c.name.c_str(),
                      static_cast<unsigned long long>(c.slo_misses),
                      static_cast<unsigned long long>(prev));
          ok = false;
          curve_ok = false;
        }
        prev = c.slo_misses;
        if (resilient) {
          if (intensity > 0.0 && c.slo_misses >= naive_misses) {
            std::printf(
                "FAIL %s: resilient slo_misses %llu not strictly below "
                "naive %llu\n",
                c.name.c_str(),
                static_cast<unsigned long long>(c.slo_misses),
                static_cast<unsigned long long>(naive_misses));
            ok = false;
            curve_ok = false;
          }
        } else {
          naive_misses = c.slo_misses;
        }

        std::printf(
            "  %-28s miss=%.3f p99=%llds cov=%.3f retries=%llu hedges=%llu "
            "stale=%llu degraded=%llu  t=%.0fms\n",
            c.name.c_str(), c.slo_miss_fraction,
            static_cast<long long>(c.p99_s), c.feed_coverage_mean,
            static_cast<unsigned long long>(c.retries),
            static_cast<unsigned long long>(c.hedges),
            static_cast<unsigned long long>(c.stale_served),
            static_cast<unsigned long long>(c.degraded_feeds), c.run_ms);
        cells.push_back(c);
      }
    }
    gate_scenarios.push_back({sc.name + "_naive", naive_curve_ok});
    gate_scenarios.push_back({sc.name + "_resilient", resilient_curve_ok});
  }

  // Zero-plan identity probes: the BENCH_serving.json maxav_conrep /
  // maxav_unconrep configurations, resilience fully enabled. The
  // request-log checksum must reproduce the naive one at every thread
  // count.
  std::vector<Probe> probes;
  for (const bool unconrep : {false, true}) {
    dosn::serve::ServingConfig config;
    config.policy = dosn::placement::PolicyKind::kMaxAv;
    config.connectivity = unconrep ? dosn::placement::Connectivity::kUnconRep
                                   : dosn::placement::Connectivity::kConRep;
    config.replicas = 5;
    config.served_users = kProbeCap;
    if (unconrep)
      config.faults.relay_outages.push_back(
          {kDaySeconds, 2 * kDaySeconds});

    Probe p;
    p.name = unconrep ? "maxav_unconrep" : "maxav_conrep";
    p.naive_checksum = run_cell(config).request_log_checksum;

    config.resilience = resilient_policy();
    p.identical_across_threads = true;
    for (const std::size_t threads : kThreadCounts) {
      dosn::serve::ServingReport report;
      if (threads == 1) {
        report = run_cell(config);
        p.resilient_checksum = report.request_log_checksum;
      } else {
        dosn::util::ThreadPool pool(
            dosn::util::RuntimeOptions{.threads = threads});
        report = dosn::serve::run_serving_study(input.dataset, input.schedules,
                                                input.cohort, seed, config,
                                                &pool);
      }
      p.identical_across_threads &=
          report.request_log_checksum == p.resilient_checksum;
    }
    p.matches_naive = p.resilient_checksum == p.naive_checksum;
    if (!p.matches_naive || !p.identical_across_threads) ok = false;
    gate_scenarios.push_back(
        {"zero_plan_" + p.name, p.matches_naive && p.identical_across_threads});
    std::printf(
        "  probe %-16s naive=%llu resilient=%llu match=%s threads=%s\n",
        p.name.c_str(), static_cast<unsigned long long>(p.naive_checksum),
        static_cast<unsigned long long>(p.resilient_checksum),
        p.matches_naive ? "yes" : "NO",
        p.identical_across_threads ? "yes" : "NO");
    probes.push_back(p);
  }

  if (dosn::obs::enabled()) {
    std::printf("\nobservability snapshot:\n%s\n",
                dosn::obs::to_table(dosn::obs::Registry::global().snapshot())
                    .c_str());
  }

  dosn::bench::write_bench_json(
      "BENCH_serving_resilience.json", "serving_resilience", seed,
      kThreadCounts.back(), [&](dosn::util::JsonWriter& w) {
        w.field("users", static_cast<std::uint64_t>(users));
        w.field("served_users", static_cast<std::uint64_t>(kSweepCap));
        dosn::bench::write_hardware_fields(w, kThreadCounts.back());
        w.key("scenarios");
        w.begin_array();
        for (const auto& g : gate_scenarios) {
          w.begin_object();
          w.field("name", g.name);
          w.field("outputs_identical", g.ok);
          w.end_object();
        }
        w.end_array();
        w.key("cells");
        w.begin_array();
        for (const auto& c : cells) {
          w.begin_object();
          w.field("name", c.name);
          w.field("scenario", c.scenario);
          w.field("policy", c.policy);
          w.field("intensity", c.intensity);
          w.field("requests", c.requests);
          w.field("unserved", c.unserved);
          w.field("slo_misses", c.slo_misses);
          w.field("slo_miss_fraction", c.slo_miss_fraction);
          w.field("p50_s", static_cast<std::uint64_t>(c.p50_s));
          w.field("p99_s", static_cast<std::uint64_t>(c.p99_s));
          w.field("p999_s", static_cast<std::uint64_t>(c.p999_s));
          w.field("feed_coverage_mean", c.feed_coverage_mean);
          w.field("retries", c.retries);
          w.field("hedges", c.hedges);
          w.field("hedge_wins", c.hedge_wins);
          w.field("stale_served", c.stale_served);
          w.field("degraded_feeds", c.degraded_feeds);
          w.field("run_ms", c.run_ms);
          w.field("checksum", c.checksum);
          w.end_object();
        }
        w.end_array();
        w.key("zero_plan_probes");
        w.begin_array();
        for (const auto& p : probes) {
          w.begin_object();
          w.field("name", p.name);
          w.field("naive_checksum", p.naive_checksum);
          w.field("resilient_checksum", p.resilient_checksum);
          w.field("matches_naive", p.matches_naive);
          w.field("identical_across_threads", p.identical_across_threads);
          w.end_object();
        }
        w.end_array();
      });
  std::printf("wrote BENCH_serving_resilience.json (%s)\n",
              ok ? "all assertions held" : "ASSERTION FAILURES");

  return ok ? 0 : 1;
}
