// Ablation A10: the cost of the UnconRep relay when it is a DHT.
//
// UnconRep assumes replicas exchange updates through third-party storage;
// the paper names "CDN, DHT, cloud storage" (Sec V-C). With a DHT the
// relay is itself decentralized: every update is a put and every fetch a
// get, each requiring an O(log n) ring lookup. This harness measures the
// routing cost and the storage balance as the relay ring grows, and the
// effect of relay-node failures on update retrievability vs the store's
// replication factor.
#include "common.hpp"

#include <set>

#include "net/dht.hpp"
#include "util/csv.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main() {
  using namespace dosn;
  bench::figure_banner(
      "ablationA10", "DHT relay: lookup cost, balance, failure tolerance",
      "lookup hops grow logarithmically with the relay size; replication 2+ "
      "keeps updates retrievable through single-node failures");

  util::Rng rng(20120618);

  // --- lookup cost & balance vs ring size -------------------------------
  util::TextTable table({"ring nodes", "mean hops", "p95 hops",
                         "max/mean storage"});
  util::CsvWriter csv(bench::csv_path("ablationA10_dht_lookup"));
  csv.header(std::vector<std::string>{"nodes", "mean_hops", "p95_hops",
                                      "storage_skew"});
  for (const std::size_t n : {16u, 64u, 256u, 1024u}) {
    net::DhtRing ring(2);
    for (std::uint64_t id = 1; id <= n; ++id) ring.join(id);

    // Simulated profile-update keys.
    constexpr int kKeys = 2000;
    for (int i = 0; i < kKeys; ++i)
      ring.put(util::format("profile:%d:update:%d", i % 200, i / 200), "~");

    std::vector<double> hops;
    for (int i = 0; i < 1000; ++i)
      hops.push_back(static_cast<double>(
          ring.lookup(util::format("profile:%d:update:%d", i % 200, i % 10),
                      rng)
              .hops));
    const double mean = util::mean_of(hops);
    const double p95 = util::percentile(hops, 0.95);

    double max_store = 0;
    for (std::uint64_t id = 1; id <= n; ++id)
      max_store = std::max(max_store,
                           static_cast<double>(ring.entries_at(id)));
    const double mean_store =
        static_cast<double>(ring.stored_entries()) / static_cast<double>(n);
    table.add_row(std::to_string(n),
                  {mean, p95, max_store / std::max(mean_store, 1e-9)});
    csv.row(std::vector<double>{static_cast<double>(n), mean, p95,
                                max_store / std::max(mean_store, 1e-9)});
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf("\nwrote %s\n\n", bench::csv_path("ablationA10_dht_lookup").c_str());

  // --- failure tolerance vs replication ---------------------------------
  util::TextTable fail_table({"store replication", "retrievable after 10% "
                              "node failures"});
  util::CsvWriter fail_csv(bench::csv_path("ablationA10_dht_failures"));
  fail_csv.header(std::vector<std::string>{"replication", "retrievable"});
  for (const std::size_t repl : {1u, 2u, 3u}) {
    net::DhtRing ring(repl);
    constexpr std::size_t kNodes = 200;
    for (std::uint64_t id = 1; id <= kNodes; ++id) ring.join(id);
    constexpr int kKeys = 1000;
    for (int i = 0; i < kKeys; ++i)
      ring.put("update:" + std::to_string(i), "payload");

    // Crash 10% of the relay nodes abruptly (no handoff): a key stays
    // retrievable iff at least one of its responsible replicas survives.
    std::size_t retrievable = 0;
    std::set<std::uint64_t> failed;
    for (auto idx : rng.sample_indices(kNodes, kNodes / 10))
      failed.insert(static_cast<std::uint64_t>(idx + 1));
    for (int i = 0; i < kKeys; ++i) {
      const auto key = "update:" + std::to_string(i);
      bool found = false;
      for (const auto owner : ring.responsible_nodes(key))
        if (!failed.count(owner)) {
          found = true;
          break;
        }
      retrievable += found ? 1 : 0;
    }
    const double rate =
        static_cast<double>(retrievable) / static_cast<double>(kKeys);
    fail_table.add_row(std::to_string(repl), {rate});
    fail_csv.row(std::vector<double>{static_cast<double>(repl), rate});
  }
  std::fputs(fail_table.render().c_str(), stdout);
  std::printf("\nwrote %s\n",
              bench::csv_path("ablationA10_dht_failures").c_str());
  return 0;
}
