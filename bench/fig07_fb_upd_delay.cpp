// Figure 7: Facebook, ConRep — update-propagation delay (hours) vs
// replication degree for the four online-time model panels.
#include "common.hpp"

int main() {
  using namespace dosn;
  bench::figure_banner(
      "fig07", "Facebook-ConRep: Update Propagation Delay",
      "non-intuitively the delay INCREASES with replication degree; MaxAv "
      "incurs the highest delay (it picks low-overlap replicas); Sporadic "
      "has the lowest delay of the models; delays reach tens of hours");
  const auto env = bench::load_env("facebook");
  bench::run_model_panels(env, "fig07", "Fig 7: FB ConRep update delay",
                          sim::Metric::kDelayActualH,
                          placement::Connectivity::kConRep);
  return 0;
}
