// Ablation A3: the extension policies against the paper's three — the
// availability / freshness / fairness triangle.
//
//   * CoreGroup (delay-aware greedy, Sec V-C's "core group" idea) should
//     cut the propagation delay versus MaxAv at a modest availability cost;
//   * Hybrid(alpha) spans MostActive (alpha=1) .. MaxAv-like (alpha=0);
//   * the fairness load cap bounds hosting load with small metric impact.
#include "common.hpp"

#include "core/replica_manager.hpp"
#include "onlinetime/model.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

int main() {
  using namespace dosn;
  bench::figure_banner(
      "ablationA3", "Extension policies: availability vs delay vs fairness",
      "CoreGroup trades availability for delay; Hybrid interpolates between "
      "MostActive and MaxAv; a load cap flattens hosting-load inequality");
  const auto env = bench::load_env("facebook");
  sim::Study study(env.dataset, env.seed);

  // --- sweep with all five policies -----------------------------------
  auto opts = env.options();
  opts.policies = {placement::PolicyKind::kMaxAv,
                   placement::PolicyKind::kMostActive,
                   placement::PolicyKind::kRandom,
                   placement::PolicyKind::kCoreGroup,
                   placement::PolicyKind::kHybrid};
  const auto sweep = study.replication_sweep(
      onlinetime::ModelKind::kSporadic, {}, placement::Connectivity::kConRep,
      opts);
  bench::report_metric("ablationA3_availability",
                       "Ablation A3: availability, all policies", sweep,
                       sim::Metric::kAvailability);
  bench::report_metric("ablationA3_delay",
                       "Ablation A3: update delay, all policies", sweep,
                       sim::Metric::kDelayActualH);
  bench::report_metric("ablationA3_replicas",
                       "Ablation A3: replicas actually used", sweep,
                       sim::Metric::kReplicasUsed);

  // --- hybrid alpha sweep ----------------------------------------------
  {
    std::vector<util::Series> availability, delay;
    std::string x_label;
    for (double alpha : {0.0, 0.25, 0.5, 0.75, 1.0}) {
      auto aopts = env.options();
      aopts.policies = {placement::PolicyKind::kHybrid};
      aopts.policy_params.hybrid_alpha = alpha;
      const auto s = study.replication_sweep(
          onlinetime::ModelKind::kSporadic, {},
          placement::Connectivity::kConRep, aopts);
      auto a = s.series(sim::Metric::kAvailability).front();
      a.name = s.policies[0].policy_name;
      availability.push_back(std::move(a));
      auto d = s.series(sim::Metric::kDelayActualH).front();
      d.name = s.policies[0].policy_name;
      delay.push_back(std::move(d));
      x_label = s.x_label;
    }
    util::ChartOptions copts;
    copts.title = "Ablation A3: Hybrid alpha sweep (availability)";
    copts.x_label = x_label;
    copts.y_label = "availability";
    copts.y_min = 0.0;
    copts.y_max = 1.0;
    std::fputs(util::render_chart(availability, copts).c_str(), stdout);
    util::write_series_csv(bench::csv_path("ablationA3_hybrid_availability"),
                           x_label, availability);
    util::write_series_csv(bench::csv_path("ablationA3_hybrid_delay"),
                           x_label, delay);
    std::printf("wrote %s and %s\n\n",
                bench::csv_path("ablationA3_hybrid_availability").c_str(),
                bench::csv_path("ablationA3_hybrid_delay").c_str());
  }

  // --- fairness: load caps over the whole network -----------------------
  {
    const auto model =
        onlinetime::make_model(onlinetime::ModelKind::kSporadic);
    util::Rng mrng(util::mix64(env.seed, 0xfa12));
    const auto schedules = model->schedules(env.dataset, mrng);

    util::TextTable table({"load cap", "mean load", "max load", "gini",
                           "avg replicas placed"});
    std::vector<std::string> header{"load_cap", "mean", "max", "gini",
                                    "avg_replicas"};
    util::CsvWriter csv(bench::csv_path("ablationA3_load_fairness"));
    csv.header(header);
    for (std::size_t cap : {std::size_t{0}, std::size_t{20}, std::size_t{10},
                            std::size_t{5}, std::size_t{3}}) {
      core::AssignmentConfig cfg;
      cfg.policy = placement::PolicyKind::kMaxAv;
      cfg.connectivity = placement::Connectivity::kConRep;
      cfg.max_replicas = 5;
      cfg.load_cap = cap;
      util::Rng rng(util::mix64(env.seed, 0xfa13));
      const auto assignment =
          core::assign_replicas(env.dataset, schedules, cfg, rng);
      const auto stats = core::load_stats(assignment.host_load);
      const std::string label = cap == 0 ? "none" : std::to_string(cap);
      table.add_row(label,
                    {stats.mean, static_cast<double>(stats.max), stats.gini,
                     assignment.average_replication_degree()});
      csv.row(std::vector<double>{static_cast<double>(cap), stats.mean,
                                  static_cast<double>(stats.max), stats.gini,
                                  assignment.average_replication_degree()});
    }
    std::printf("Hosting-load fairness under MaxAv/ConRep, k = 5:\n");
    std::fputs(table.render().c_str(), stdout);
    std::printf("wrote %s\n", bench::csv_path("ablationA3_load_fairness").c_str());
  }
  return 0;
}
