// Figure 5: Facebook, ConRep — availability-on-demand-time vs replication
// degree for the four online-time model panels.
#include "common.hpp"

int main() {
  using namespace dosn;
  bench::figure_banner(
      "fig05", "Facebook-ConRep: Availability-on-Demand-Time",
      "AoD-time approaches 1.0 with ~5 MaxAv replicas (Sporadic); "
      "MostActive and Random need more replicas for the same level");
  const auto env = bench::load_env("facebook");
  bench::run_model_panels(env, "fig05", "Fig 5: FB ConRep AoD-time",
                          sim::Metric::kAodTime,
                          placement::Connectivity::kConRep);
  return 0;
}
