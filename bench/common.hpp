// Shared scaffolding for the figure-reproduction harnesses.
//
// Every `figNN_*` binary regenerates one figure of the paper: it builds the
// (synthetic stand-in) dataset, runs the corresponding Study sweep, prints
// the series as an ASCII chart plus a table, and writes
// `results/<figure>.csv`. Binaries take no arguments; environment knobs:
//
//   DOSN_BENCH_SCALE  — user-count scale factor (default 1.0 = paper scale;
//                       e.g. 0.05 for a quick smoke run)
//   DOSN_BENCH_SEED   — RNG seed (default 20120618 — ICDCS'12 week)
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "sim/study.hpp"
#include "synth/presets.hpp"
#include "util/ascii_chart.hpp"
#include "util/json.hpp"

namespace dosn::bench {

/// DOSN_BENCH_SEED, default 20120618 (the ICDCS'12 week).
std::uint64_t bench_seed();

/// Peak resident set size of this process so far, in MiB (Linux
/// getrusage ru_maxrss; 0.0 where unavailable). Monotone over the process
/// lifetime — sample it right after the phase being measured.
double peak_rss_mb();

/// Worker threads the hardware actually offers
/// (util::default_thread_count()). The thread-sweep benches run fixed
/// counts {1, 2, 4, 8} regardless — on a small machine the larger counts
/// measure oversubscription overhead, not speedup — so every timing
/// section records this next to its wall times.
std::size_t hardware_threads();

/// Emits the standard hardware-provenance fields into the current JSON
/// object: "hardware_threads" alone, or — when the sweep's largest thread
/// count is supplied — plus "oversubscribed"
/// (max_threads > hardware_threads()).
void write_hardware_fields(util::JsonWriter& w);
void write_hardware_fields(util::JsonWriter& w, std::size_t max_threads);

/// DOSN_BENCH_SCALE, or `fallback` when unset.
double bench_scale(double fallback = 1.0);

struct FigureEnv {
  trace::Dataset dataset;
  std::uint64_t seed = 0;
  double scale = 1.0;
  std::size_t cohort_degree = 10;
  std::size_t repetitions = 5;

  sim::Study::Options options(std::size_t k_max = 10) const;
};

/// Builds the filtered study dataset for "facebook" or "twitter".
FigureEnv load_env(const std::string& dataset_name);

/// Prints one metric of a sweep as chart + table and writes its CSV.
void report_metric(const std::string& figure_id, const std::string& title,
                   const sim::SweepResult& sweep, sim::Metric metric,
                   bool log_x = false);

/// Prints the figure header with the paper's expectation for comparison.
void figure_banner(const std::string& figure_id, const std::string& title,
                   const std::string& paper_expectation);

/// results/<name>.csv under the current working directory.
std::string csv_path(const std::string& name);

/// Runs the replication-degree sweep for the paper's four online-time
/// model panels (Sporadic 20min, RandomLength 2-8h, FixedLength 2h,
/// FixedLength 8h) and reports `metric` for each — the layout of
/// Figs 3, 5, 6, 7, 10 and 11.
void run_model_panels(const FigureEnv& env, const std::string& figure_id,
                      const std::string& title, sim::Metric metric,
                      placement::Connectivity connectivity);

/// Writes `path` as the standard BENCH_*.json envelope (stable schema):
///
///   {
///     "benchmark": <name>,
///     "seed": ...,
///     "threads": ...,
///     <fields emitted by `body`>,
///     "metrics": <obs registry snapshot (obs::append_json layout)>
///   }
///
/// `body` runs with the writer positioned inside the top-level object and
/// must emit complete key/value pairs. The metrics section snapshots the
/// process-wide obs registry at call time; all bytes except span durations
/// are deterministic for a fixed seed.
void write_bench_json(const std::string& path, const std::string& benchmark,
                      std::uint64_t seed, std::size_t threads,
                      const std::function<void(util::JsonWriter&)>& body);

}  // namespace dosn::bench
