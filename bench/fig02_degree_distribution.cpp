// Figure 2: user degree distribution of the Facebook and Twitter datasets
// (number of users per degree; friends resp. followers).
#include "common.hpp"

#include "graph/analysis.hpp"
#include "graph/degree_stats.hpp"
#include "util/csv.hpp"

int main() {
  using namespace dosn;

  bench::figure_banner(
      "fig02", "User degree distribution of the datasets",
      "heavy-tailed: hundreds of users at low degrees, a long tail out to "
      "degree ~250 for both networks");

  const auto fb = bench::load_env("facebook");
  const auto tw = bench::load_env("twitter");

  constexpr std::size_t kMaxDegree = 250;
  auto histogram_series = [&](const trace::Dataset& d, const char* name) {
    const auto h = graph::degree_histogram(d.graph);
    util::Series s;
    s.name = name;
    for (std::size_t deg = 1; deg <= kMaxDegree; ++deg) {
      s.x.push_back(static_cast<double>(deg));
      s.y.push_back(deg < h.size() ? static_cast<double>(h[deg]) : 0.0);
    }
    return s;
  };

  std::vector<util::Series> series{histogram_series(fb.dataset, "Facebook"),
                                   histogram_series(tw.dataset, "Twitter")};

  util::ChartOptions opts;
  opts.title = "Fig 2: user degree distribution (study datasets)";
  opts.x_label = "user degree";
  opts.y_label = "number of users";
  std::fputs(util::render_chart(series, opts).c_str(), stdout);

  const auto path = bench::csv_path("fig02_degree_distribution");
  util::write_series_csv(path, "degree", series);
  std::printf("wrote %s\n", path.c_str());

  // Structural characterization of the stand-ins.
  util::Rng rng(7);
  for (const auto* d : {&fb.dataset, &tw.dataset}) {
    std::printf(
        "%s structure: largest component %zu/%zu users, clustering %.3f "
        "(sampled), assortativity %+.3f\n",
        d->name.c_str(), graph::largest_component_size(d->graph),
        d->graph.num_users(),
        graph::sample_clustering_coefficient(d->graph, 2000, rng),
        graph::degree_assortativity(d->graph));
  }

  // Headline numbers the paper quotes in Sec IV-A.
  std::printf("\nFacebook: degree-10 cohort %zu users (paper: ~300)\n",
              graph::users_with_degree(fb.dataset.graph, 10).size());
  std::printf("Twitter:  degree-10 cohort %zu users (paper: ~550)\n",
              graph::users_with_degree(tw.dataset.graph, 10).size());
  return 0;
}
