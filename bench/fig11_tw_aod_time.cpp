// Figure 11: Twitter, ConRep — availability-on-demand-time vs replication
// degree for the four online-time model panels.
#include "common.hpp"

int main() {
  using namespace dosn;
  bench::figure_banner(
      "fig11", "Twitter-ConRep: Availability-on-Demand-Time",
      "mirrors Facebook except FixedLength(8h) does not reach the maximum: "
      "some followers never connect in time to any replica");
  const auto env = bench::load_env("twitter");
  bench::run_model_panels(env, "fig11", "Fig 11: TW ConRep AoD-time",
                          sim::Metric::kAodTime,
                          placement::Connectivity::kConRep);
  return 0;
}
