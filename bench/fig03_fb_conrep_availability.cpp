// Figure 3: Facebook, ConRep — availability vs replication degree for the
// four online-time model panels.
#include "common.hpp"

int main() {
  using namespace dosn;
  bench::figure_banner(
      "fig03", "Facebook-ConRep: Availability",
      "availability rises with k and flattens after k ~ 4-6; MaxAv >= "
      "MostActive >= Random at every k; FixedLength(2h) stays low");
  const auto env = bench::load_env("facebook");
  bench::run_model_panels(env, "fig03", "Fig 3: FB ConRep availability",
                          sim::Metric::kAvailability,
                          placement::Connectivity::kConRep);
  return 0;
}
