// Figure 6: Facebook, ConRep — availability-on-demand-activity vs
// replication degree for the four online-time model panels.
#include "common.hpp"

int main() {
  using namespace dosn;
  bench::figure_banner(
      "fig06", "Facebook-ConRep: Availability-on-Demand-Activity",
      "AoD-activity is even higher than AoD-time: a small replication "
      "degree makes profiles highly available at friends' activity times");
  const auto env = bench::load_env("facebook");
  bench::run_model_panels(env, "fig06", "Fig 6: FB ConRep AoD-activity",
                          sim::Metric::kAodActivity,
                          placement::Connectivity::kConRep);
  return 0;
}
