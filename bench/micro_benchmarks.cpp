// Google-benchmark microbenchmarks for the performance-critical kernels:
// interval algebra, worst-case wait analysis, greedy placement, the delay
// metric, and the event-driven replica simulator.
#include <benchmark/benchmark.h>

#include "core/profile.hpp"
#include "interval/day_schedule.hpp"
#include "net/dht.hpp"
#include "net/gossip.hpp"
#include "metrics/delay.hpp"
#include "net/replica_sim.hpp"
#include "placement/max_av.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace {

using dosn::interval::DaySchedule;
using dosn::interval::IntervalSet;
using dosn::interval::kDaySeconds;
using dosn::interval::Seconds;

DaySchedule random_schedule(dosn::util::Rng& rng, int pieces) {
  IntervalSet s;
  for (int i = 0; i < pieces; ++i) {
    const Seconds start = rng.range(0, kDaySeconds - 7200);
    const Seconds len = rng.range(300, 2 * 3600);
    s.add(start, std::min(start + len, kDaySeconds));
  }
  return DaySchedule(std::move(s));
}

void BM_IntervalUnion(benchmark::State& state) {
  dosn::util::Rng rng(1);
  const auto a = random_schedule(rng, static_cast<int>(state.range(0)));
  const auto b = random_schedule(rng, static_cast<int>(state.range(0)));
  for (auto _ : state) benchmark::DoNotOptimize(a.unite(b));
}
BENCHMARK(BM_IntervalUnion)->Arg(4)->Arg(16)->Arg(64);

void BM_IntervalIntersectMeasure(benchmark::State& state) {
  dosn::util::Rng rng(2);
  const auto a = random_schedule(rng, static_cast<int>(state.range(0)));
  const auto b = random_schedule(rng, static_cast<int>(state.range(0)));
  for (auto _ : state)
    benchmark::DoNotOptimize(a.set().intersection_measure(b.set()));
}
BENCHMARK(BM_IntervalIntersectMeasure)->Arg(4)->Arg(16)->Arg(64);

void BM_WorstCaseWait(benchmark::State& state) {
  dosn::util::Rng rng(3);
  const auto a = random_schedule(rng, static_cast<int>(state.range(0)));
  const auto b = random_schedule(rng, static_cast<int>(state.range(0)));
  for (auto _ : state)
    benchmark::DoNotOptimize(dosn::interval::worst_case_wait(a, b));
}
BENCHMARK(BM_WorstCaseWait)->Arg(4)->Arg(16)->Arg(64);

// MaxAv greedy set cover: full-rescan reference vs the CELF lazy greedy
// (identical selections; the second argument toggles the implementation).
void maxav_select_impl(benchmark::State& state, bool lazy) {
  dosn::util::Rng rng(4);
  const auto candidates_count = static_cast<std::size_t>(state.range(0));
  std::vector<DaySchedule> schedules;
  schedules.push_back(random_schedule(rng, 4));  // owner
  std::vector<dosn::graph::UserId> candidates;
  for (std::size_t i = 0; i < candidates_count; ++i) {
    schedules.push_back(random_schedule(rng, 4));
    candidates.push_back(static_cast<dosn::graph::UserId>(i + 1));
  }
  dosn::trace::ActivityTrace trace(candidates_count + 1, {});
  dosn::placement::MaxAvPolicy policy(
      dosn::placement::MaxAvObjective::kAvailability,
      /*conrep_least_overlap=*/false, lazy);
  dosn::placement::PlacementContext ctx;
  ctx.user = 0;
  ctx.candidates = candidates;
  ctx.schedules = schedules;
  ctx.trace = &trace;
  ctx.connectivity = dosn::placement::Connectivity::kConRep;
  ctx.max_replicas = 10;
  for (auto _ : state) benchmark::DoNotOptimize(policy.select(ctx, rng));
}

void BM_MaxAvSelect(benchmark::State& state) {
  maxav_select_impl(state, /*lazy=*/false);
}
BENCHMARK(BM_MaxAvSelect)->Arg(10)->Arg(40)->Arg(160);

void BM_MaxAvSelectLazy(benchmark::State& state) {
  maxav_select_impl(state, /*lazy=*/true);
}
BENCHMARK(BM_MaxAvSelectLazy)->Arg(10)->Arg(40)->Arg(160);

// Fork-join overhead of the deterministic thread pool (per-index work is
// trivial, so this measures dispatch + join cost).
void BM_ThreadPoolForEach(benchmark::State& state) {
  dosn::util::ThreadPool pool(static_cast<std::size_t>(state.range(0)));
  std::vector<double> slots(4096);
  for (auto _ : state) {
    pool.for_each_index(slots.size(), [&](std::size_t i) {
      slots[i] = static_cast<double>(i) * 1.5;
    });
    benchmark::DoNotOptimize(slots.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(slots.size()));
}
BENCHMARK(BM_ThreadPoolForEach)->Arg(1)->Arg(2)->Arg(4);

void BM_UpdatePropagationDelay(benchmark::State& state) {
  dosn::util::Rng rng(5);
  const auto owner = random_schedule(rng, 4);
  std::vector<DaySchedule> replicas;
  for (int i = 0; i < state.range(0); ++i)
    replicas.push_back(random_schedule(rng, 4));
  for (auto _ : state)
    benchmark::DoNotOptimize(dosn::metrics::update_propagation_delay(
        owner, replicas, dosn::placement::Connectivity::kConRep));
}
BENCHMARK(BM_UpdatePropagationDelay)->Arg(3)->Arg(10);

void BM_ReplicaSim(benchmark::State& state) {
  dosn::util::Rng rng(6);
  std::vector<DaySchedule> nodes;
  for (int i = 0; i < 6; ++i) nodes.push_back(random_schedule(rng, 6));
  const auto updates = dosn::net::updates_within_schedules(
      nodes, static_cast<std::size_t>(state.range(0)), 14, rng);
  dosn::net::ReplicaSimConfig cfg;
  cfg.horizon_days = 21;
  for (auto _ : state)
    benchmark::DoNotOptimize(
        dosn::net::simulate_replica_group(nodes, updates, cfg));
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(state.range(0)));
}
BENCHMARK(BM_ReplicaSim)->Arg(50)->Arg(500);

void BM_ProfileMerge(benchmark::State& state) {
  const auto posts = static_cast<int>(state.range(0));
  dosn::core::Profile a(0), b(0);
  for (int i = 0; i < posts; ++i) {
    a.append(1, i, "post");
    b.append(2, i, "post");
  }
  for (auto _ : state) {
    dosn::core::Profile merged = a;
    merged.merge(b);
    benchmark::DoNotOptimize(merged.size());
  }
  state.SetItemsProcessed(state.iterations() * posts);
}
BENCHMARK(BM_ProfileMerge)->Arg(64)->Arg(512);

void BM_DhtLookup(benchmark::State& state) {
  dosn::util::Rng rng(7);
  dosn::net::DhtRing ring(2);
  for (std::int64_t id = 1; id <= state.range(0); ++id)
    ring.join(static_cast<std::uint64_t>(id));
  int i = 0;
  for (auto _ : state)
    benchmark::DoNotOptimize(
        ring.lookup("key" + std::to_string(i++ % 1000), rng).hops);
}
BENCHMARK(BM_DhtLookup)->Arg(64)->Arg(1024);

void BM_GossipDay(benchmark::State& state) {
  dosn::util::Rng rng(8);
  std::vector<DaySchedule> nodes;
  for (int i = 0; i < 5; ++i) nodes.push_back(random_schedule(rng, 4));
  std::vector<dosn::net::GossipWrite> writes;
  const auto specs =
      dosn::net::updates_within_schedules(nodes, 20, 3, rng);
  for (const auto& s : specs) writes.push_back({s.time, s.origin, 1});
  dosn::net::GossipConfig cfg;
  cfg.sync_period = 600;
  cfg.horizon_days = 4;
  for (auto _ : state) {
    dosn::util::Rng run_rng(9);
    benchmark::DoNotOptimize(
        dosn::net::simulate_gossip(nodes, writes, cfg, run_rng));
  }
}
BENCHMARK(BM_GossipDay);

}  // namespace

BENCHMARK_MAIN();
