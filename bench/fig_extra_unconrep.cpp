// Extra panels the paper defers to its technical report [14]: the
// UnconRep counterparts of the availability / AoD / delay sweeps for the
// remaining online-time models ("for other online time models cf. [14]",
// "for the case of UnconRep, it is even higher (cf. [14])").
#include "common.hpp"

int main() {
  using namespace dosn;
  bench::figure_banner(
      "figX", "Facebook-UnconRep: remaining panels (tech-report [14])",
      "UnconRep availability/AoD at or above the ConRep curves for every "
      "model; UnconRep delay below ConRep (relay-mediated exchange)");
  const auto env = bench::load_env("facebook");

  bench::run_model_panels(env, "figX1", "TR: FB UnconRep availability",
                          sim::Metric::kAvailability,
                          placement::Connectivity::kUnconRep);
  bench::run_model_panels(env, "figX2", "TR: FB UnconRep AoD-activity",
                          sim::Metric::kAodActivity,
                          placement::Connectivity::kUnconRep);
  bench::run_model_panels(env, "figX3", "TR: FB UnconRep update delay",
                          sim::Metric::kDelayActualH,
                          placement::Connectivity::kUnconRep);
  return 0;
}
