// Ablation A6: protocol granularity — when does the paper's instant-
// exchange assumption hold?
//
// The analytic delay metric assumes replicas exchange state the moment
// they are simultaneously online. A real anti-entropy protocol probes
// every P seconds: overlaps shorter than P can be missed entirely and
// every hop adds up to P of slack. This harness sweeps P on real cohort
// replica groups (MaxAv/ConRep placement, Sporadic 20-min sessions — the
// most fragmented schedules) and reports delivery rate, realized delay,
// and message cost per delivered post.
#include "common.hpp"

#include "graph/degree_stats.hpp"
#include "net/gossip.hpp"
#include "onlinetime/model.hpp"
#include "util/csv.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main() {
  using namespace dosn;
  bench::figure_banner(
      "ablationA6", "Anti-entropy period vs the instant-exchange assumption",
      "fine periods (<= ~1 min) match the analytic model; periods near the "
      "session length start missing rendezvous and lose deliveries");
  const auto env = bench::load_env("facebook");

  const auto model = onlinetime::make_model(onlinetime::ModelKind::kSporadic);
  util::Rng mrng(util::mix64(env.seed, 0xa6));
  const auto schedules = model->schedules(env.dataset, mrng);

  auto cohort =
      graph::users_with_degree(env.dataset.graph, env.cohort_degree);
  cohort.resize(std::min<std::size_t>(cohort.size(), 25));

  // Place replicas once (MaxAv, ConRep, k = 5).
  const auto policy = placement::make_policy(placement::PolicyKind::kMaxAv);
  std::vector<std::vector<interval::DaySchedule>> groups;
  for (graph::UserId u : cohort) {
    placement::PlacementContext ctx;
    ctx.user = u;
    ctx.candidates = env.dataset.graph.contacts(u);
    ctx.schedules = schedules;
    ctx.trace = &env.dataset.trace;
    ctx.connectivity = placement::Connectivity::kConRep;
    ctx.max_replicas = 5;
    util::Rng prng(util::mix64(env.seed, 0xa7));
    const auto selected = policy->select(ctx, prng);
    if (selected.empty()) continue;
    std::vector<interval::DaySchedule> group{schedules[u]};
    for (auto host : selected) group.push_back(schedules[host]);
    groups.push_back(std::move(group));
  }
  std::printf("replica groups: %zu (owner + up to 5 MaxAv replicas)\n\n",
              groups.size());

  util::TextTable table({"sync period", "delivery rate", "mean delay (h)",
                         "max delay (h)", "msgs / delivered post",
                         "lost msgs"});
  util::CsvWriter csv(bench::csv_path("ablationA6_gossip_period"));
  csv.header(std::vector<std::string>{"period_s", "delivery_rate",
                                      "mean_delay_h", "max_delay_h",
                                      "msgs_per_post", "lost"});

  for (const interval::Seconds period : {30LL, 120LL, 600LL, 1200LL, 3600LL}) {
    std::size_t delivered = 0, expected = 0;
    double mean_sum = 0.0;
    std::size_t mean_count = 0;
    interval::Seconds max_delay = 0;
    std::uint64_t messages = 0, lost = 0;

    for (std::size_t g = 0; g < groups.size(); ++g) {
      const auto& group = groups[g];
      util::Rng grng(util::mix64(env.seed, 0xa8 + g));
      // 20 writes through the owner at random owner-online instants.
      const auto specs = net::updates_within_schedules(
          {group.data(), 1}, 20, 10, grng);
      std::vector<net::GossipWrite> writes;
      for (const auto& s : specs)
        writes.push_back({s.time, 0, static_cast<graph::UserId>(g)});

      net::GossipConfig cfg;
      cfg.sync_period = period;
      cfg.link_latency = 1;
      cfg.horizon_days = 16;
      util::Rng rng(util::mix64(env.seed, 0xa9 + g));
      const auto r = net::simulate_gossip(group, writes, cfg, rng);

      for (std::size_t w = 0; w < writes.size(); ++w) {
        for (std::size_t n = 1; n < group.size(); ++n) {
          if (group[n].empty()) continue;
          ++expected;
          if (r.arrival[w][n]) {
            ++delivered;
            const auto d = *r.arrival[w][n] - writes[w].time;
            mean_sum += static_cast<double>(d);
            ++mean_count;
            max_delay = std::max(max_delay, d);
          }
        }
      }
      messages += r.messages_sent;
      lost += r.messages_lost;
    }

    const double rate = expected
                            ? static_cast<double>(delivered) /
                                  static_cast<double>(expected)
                            : 1.0;
    const double mean_h =
        mean_count ? mean_sum / static_cast<double>(mean_count) / 3600.0 : 0;
    const double max_h = static_cast<double>(max_delay) / 3600.0;
    const double msgs_per =
        delivered ? static_cast<double>(messages) /
                        static_cast<double>(delivered)
                  : 0.0;
    table.add_row(util::format("%llds", static_cast<long long>(period)),
                  {rate, mean_h, max_h, msgs_per,
                   static_cast<double>(lost)});
    csv.row(std::vector<double>{static_cast<double>(period), rate, mean_h,
                                max_h, msgs_per, static_cast<double>(lost)});
  }

  std::fputs(table.render().c_str(), stdout);
  std::printf("\nwrote %s\n", bench::csv_path("ablationA6_gossip_period").c_str());
  return 0;
}
