// Figure 10: Twitter, ConRep — availability vs replication degree for the
// four online-time model panels (replicas on followers).
#include "common.hpp"

int main() {
  using namespace dosn;
  bench::figure_banner(
      "fig10", "Twitter-ConRep: Availability",
      "same trends as Facebook: availability rises and flattens; MaxAv "
      "dominates; FixedLength(2h) stays low");
  const auto env = bench::load_env("twitter");
  bench::run_model_panels(env, "fig10", "Fig 10: TW ConRep availability",
                          sim::Metric::kAvailability,
                          placement::Connectivity::kConRep);
  return 0;
}
