#include "common.hpp"

#include <sys/resource.h>

#include <cstdio>
#include <cstdlib>

#include "graph/degree_stats.hpp"
#include "obs/export.hpp"
#include "util/csv.hpp"
#include "util/pipeline_runtime.hpp"
#include "util/strings.hpp"

namespace dosn::bench {

double bench_scale(double fallback) {
  // NOLINTNEXTLINE(concurrency-mt-unsafe) — read once at bench startup,
  // before any worker thread exists.
  if (const char* s = std::getenv("DOSN_BENCH_SCALE"))
    return util::parse_f64(s);
  return fallback;
}

std::uint64_t bench_seed() {
  // NOLINTNEXTLINE(concurrency-mt-unsafe) — read once at bench startup.
  if (const char* s = std::getenv("DOSN_BENCH_SEED"))
    return static_cast<std::uint64_t>(util::parse_i64(s));
  return 20120618;  // ICDCS'12 week
}

double peak_rss_mb() {
  struct rusage usage {};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0.0;
  // ru_maxrss is KiB on Linux.
  return static_cast<double>(usage.ru_maxrss) / 1024.0;
}

std::size_t hardware_threads() { return util::default_thread_count(); }

void write_hardware_fields(util::JsonWriter& w) {
  w.field("hardware_threads", static_cast<std::uint64_t>(hardware_threads()));
}

void write_hardware_fields(util::JsonWriter& w, std::size_t max_threads) {
  write_hardware_fields(w);
  w.field("oversubscribed", max_threads > hardware_threads());
}

void write_bench_json(const std::string& path, const std::string& benchmark,
                      std::uint64_t seed, std::size_t threads,
                      const std::function<void(util::JsonWriter&)>& body) {
  util::JsonWriter w;
  w.begin_object();
  w.field("benchmark", benchmark);
  w.field("seed", seed);
  w.field("threads", static_cast<std::uint64_t>(threads));
  body(w);
  w.key("metrics");
  obs::append_json(w, obs::Registry::global().snapshot());
  w.end_object();
  util::write_text_file(path, w.str() + "\n");
}

sim::Study::Options FigureEnv::options(std::size_t k_max) const {
  sim::Study::Options o;
  o.cohort_degree = cohort_degree;
  o.k_max = std::min(k_max, cohort_degree);
  o.repetitions = repetitions;
  return o;
}

FigureEnv load_env(const std::string& dataset_name) {
  FigureEnv env;
  env.scale = bench_scale();
  env.seed = bench_seed();

  auto preset = dataset_name == "twitter" ? synth::twitter_preset()
                                          : synth::facebook_preset();
  preset = synth::scaled(preset, env.scale);

  util::Rng rng(util::mix64(env.seed, dataset_name == "twitter" ? 2 : 1));
  env.dataset = synth::generate_study_dataset(preset, rng);

  const auto s = trace::stats_of(env.dataset);
  std::printf(
      "dataset %-8s (scale %.2f, seed %llu): %zu users, %zu edges, "
      "%zu activities, avg degree %.1f, avg activities %.1f\n",
      env.dataset.name.c_str(), env.scale,
      static_cast<unsigned long long>(env.seed), s.users, s.edges,
      s.activities, s.average_degree, s.average_activities);

  // The paper's cohort is degree 10; fall back to the best-populated
  // nearby degree when a scaled-down dataset leaves it too thin.
  env.cohort_degree = 10;
  const auto cohort = graph::users_with_degree(env.dataset.graph, 10);
  if (cohort.size() < 30) {
    env.cohort_degree = graph::most_populated_degree(env.dataset.graph, 5, 15);
    std::printf("cohort: degree-10 too thin (%zu users); using degree %zu\n",
                cohort.size(), env.cohort_degree);
  }
  std::printf(
      "cohort: %zu users of degree %zu\n\n",
      graph::users_with_degree(env.dataset.graph, env.cohort_degree).size(),
      env.cohort_degree);
  return env;
}

std::string csv_path(const std::string& name) {
  return "results/" + name + ".csv";
}

void figure_banner(const std::string& figure_id, const std::string& title,
                   const std::string& paper_expectation) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", figure_id.c_str(), title.c_str());
  std::printf("paper expectation: %s\n", paper_expectation.c_str());
  std::printf("==============================================================\n");
}

void report_metric(const std::string& figure_id, const std::string& title,
                   const sim::SweepResult& sweep, sim::Metric metric,
                   bool log_x) {
  const auto series = sweep.series(metric);

  util::ChartOptions opts;
  opts.title = title + " [" + sweep.dataset_name + ", " + sweep.model_name +
               ", " + sweep.connectivity_name + "]";
  opts.x_label = sweep.x_label;
  opts.y_label = sim::to_string(metric);
  opts.log_x = log_x;
  const bool fraction_metric = metric != sim::Metric::kDelayActualH &&
                               metric != sim::Metric::kDelayObservedH &&
                               metric != sim::Metric::kReplicasUsed;
  if (fraction_metric) {
    opts.y_min = 0.0;
    opts.y_max = 1.0;
  }
  std::fputs(util::render_chart(series, opts).c_str(), stdout);

  // Numeric table.
  std::printf("\n%-12s", sweep.x_label.c_str());
  for (const auto& s : series) std::printf("  %12s", s.name.c_str());
  std::printf("\n");
  for (std::size_t i = 0; i < sweep.xs.size(); ++i) {
    std::printf("%-12g", sweep.xs[i]);
    for (const auto& s : series) std::printf("  %12.4f", s.y[i]);
    std::printf("\n");
  }

  const auto path = csv_path(figure_id);
  util::write_series_csv(path, sweep.x_label, series);
  std::printf("\nwrote %s\n\n", path.c_str());
}

void run_model_panels(const FigureEnv& env, const std::string& figure_id,
                      const std::string& title, sim::Metric metric,
                      placement::Connectivity connectivity) {
  struct Panel {
    const char* suffix;
    onlinetime::ModelKind kind;
    onlinetime::ModelParams params;
  };
  const std::vector<Panel> panels{
      {"a_sporadic", onlinetime::ModelKind::kSporadic, {}},
      {"b_randomlength", onlinetime::ModelKind::kRandomLength, {}},
      {"c_fixed2h",
       onlinetime::ModelKind::kFixedLength,
       {.window_hours = 2.0}},
      {"d_fixed8h",
       onlinetime::ModelKind::kFixedLength,
       {.window_hours = 8.0}},
  };

  sim::Study study(env.dataset, env.seed);
  for (const auto& panel : panels) {
    const auto sweep = study.replication_sweep(panel.kind, panel.params,
                                               connectivity, env.options());
    report_metric(figure_id + panel.suffix, title, sweep, metric);
  }
}

}  // namespace dosn::bench
