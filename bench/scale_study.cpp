// Million-user scale benchmark: chunked generation plus the streaming
// study engine at N = 100k / 500k / 1M synthetic users, written to
// BENCH_scale.json.
//
// Per population size the harness measures
//   * gen_ms           — serial chunked dataset construction (graph + all
//                        schedules + the cohort-restricted trace; the full
//                        activity trace is never materialized);
//   * gen_pipelined_ms — the same construction as a pipeline on the shared
//                        work-stealing runtime (producer thread + SPSC
//                        chunk queue + parallel fold stages, DESIGN.md
//                        §12). Its output is checksummed against the
//                        serial build — bit-identity is part of
//                        outputs_identical;
//   * sweep times      — the same replication sweep run serial (threads =
//                        1), parallel on the shared pool, and parallel
//                        with a different shard size. The three sweep
//                        outputs must agree bit for bit: the streaming
//                        engine's determinism contract;
//   * pool counters    — per-configuration deltas of the thread-pool and
//                        runtime counters (jobs, blocks, steals), so the
//                        report shows which configurations actually ran
//                        parallel (the old report's top-level "threads"
//                        misreported this);
//   * peak_rss_mb      — getrusage high-water mark after each phase.
//
// Thread counts are recorded per scenario: threads_serial is always 1,
// threads_parallel is max(2, default_thread_count()) — floored at 2 so
// the work-stealing runtime is exercised (and its determinism contract
// checked) even on a single-core runner, where the "parallel" timings
// then measure oversubscription overhead, not speedup; hardware_threads
// (top-level and per scenario) records what the machine actually had, and
// per-scenario "oversubscribed" flags threads_parallel > hardware_threads
// so the committed-baseline caveat travels with the numbers. The
// top-level "threads" field is the configured maximum across the
// serial/parallel/reshard configurations, not whichever ran last.
//
// Environment knobs: DOSN_SCALE_USERS (comma-separated population sizes,
// default "100000,500000,1000000" — CI smoke runs just 100000),
// DOSN_BENCH_SEED, DOSN_THREADS, DOSN_STEAL_GRAIN, DOSN_OBS.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common.hpp"
#include "obs/export.hpp"
#include "sim/streaming.hpp"
#include "synth/scale.hpp"
#include "util/strings.hpp"
#include "util/thread_pool.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

std::vector<std::size_t> scale_users() {
  std::string spec = "100000,500000,1000000";
  // NOLINTNEXTLINE(concurrency-mt-unsafe) — read once at study startup.
  if (const char* s = std::getenv("DOSN_SCALE_USERS"); s && *s) spec = s;
  std::vector<std::size_t> out;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    const std::size_t comma = spec.find(',', pos);
    const std::string tok =
        spec.substr(pos, comma == std::string::npos ? comma : comma - pos);
    if (!tok.empty())
      out.push_back(static_cast<std::size_t>(dosn::util::parse_i64(tok)));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

/// Order-sensitive FNV-1a digest of everything a scale input determines:
/// cohort, every schedule's interval pieces, and the restricted trace.
/// Serial and pipelined builds must digest identically.
std::uint64_t input_checksum(const dosn::synth::ScaleStudyInput& input) {
  std::uint64_t h = 1469598103934665603ULL;
  const auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 1099511628211ULL;
    }
  };
  mix(input.total_activities);
  mix(input.cohort_degree);
  mix(input.cohort.size());
  for (const auto u : input.cohort) mix(u);
  mix(input.schedules.size());
  for (const auto& schedule : input.schedules) {
    for (const auto& piece : schedule.set().pieces()) {
      mix(static_cast<std::uint64_t>(piece.start));
      mix(static_cast<std::uint64_t>(piece.end));
    }
  }
  mix(input.dataset.trace.size());
  for (const auto& a : input.dataset.trace.all()) {
    mix(a.creator);
    mix(a.receiver);
    mix(static_cast<std::uint64_t>(a.timestamp));
  }
  return h;
}

/// Snapshot of the pool/runtime counters; per-configuration deltas show
/// which sweep actually fanned out and how much stealing rebalanced it.
struct PoolCounters {
  std::uint64_t jobs = 0;
  std::uint64_t serial_jobs = 0;
  std::uint64_t chunks = 0;
  std::uint64_t runtime_blocks = 0;
  std::uint64_t runtime_steals = 0;

  static PoolCounters snapshot() {
    auto& registry = dosn::obs::Registry::global();
    PoolCounters c;
    c.jobs = registry.counter("util.thread_pool.jobs").value();
    c.serial_jobs = registry.counter("util.thread_pool.serial_jobs").value();
    c.chunks = registry.counter("util.thread_pool.chunks").value();
    c.runtime_blocks = registry.counter("util.runtime.blocks").value();
    c.runtime_steals = registry.counter("util.runtime.steals").value();
    return c;
  }

  PoolCounters delta_since(const PoolCounters& before) const {
    return {jobs - before.jobs, serial_jobs - before.serial_jobs,
            chunks - before.chunks, runtime_blocks - before.runtime_blocks,
            runtime_steals - before.runtime_steals};
  }
};

struct Scenario {
  std::size_t users = 0;
  std::size_t cohort_degree = 0;
  std::size_t cohort_size = 0;
  std::uint64_t activities_total = 0;
  std::uint64_t activities_retained = 0;
  double gen_ms = 0;
  double gen_pipelined_ms = 0;
  bool gen_identical = false;
  double gen_peak_rss_mb = 0;
  double sweep_serial_ms = 0;
  double sweep_parallel_ms = 0;
  double sweep_reshard_ms = 0;
  PoolCounters pool_serial;
  PoolCounters pool_parallel;
  PoolCounters pool_reshard;
  std::uint64_t checksum = 0;
  bool identical = false;
  double peak_rss_mb = 0;
};

void write_pool_counters(dosn::util::JsonWriter& w, const std::string& prefix,
                         const PoolCounters& c) {
  w.field(prefix + "_jobs", c.jobs);
  w.field(prefix + "_serial_jobs", c.serial_jobs);
  w.field(prefix + "_chunks", c.chunks);
  w.field(prefix + "_runtime_blocks", c.runtime_blocks);
  w.field(prefix + "_runtime_steals", c.runtime_steals);
}

}  // namespace

int main() {
  const std::uint64_t seed = dosn::bench::bench_seed();
  // Floor at 2: on a single-core runner the parallel configurations then
  // exercise (and cross-check) the work-stealing runtime under
  // oversubscription instead of silently degenerating to the serial path.
  const std::size_t parallel_threads =
      std::max<std::size_t>(2, dosn::bench::hardware_threads());

  // Every configuration runs with either 1 thread (serial reference) or
  // parallel_threads; the report's top-level "threads" is their maximum,
  // independent of which configuration happened to run last.
  const std::size_t max_threads =
      std::max<std::size_t>(1, parallel_threads);

  dosn::util::ThreadPool pool(
      dosn::util::RuntimeOptions{.threads = parallel_threads});

  std::vector<Scenario> scenarios;
  bool all_identical = true;

  for (const std::size_t users : scale_users()) {
    Scenario s;
    s.users = users;

    dosn::synth::ScaleInputConfig config;
    dosn::synth::ScaleOptions opts;
    opts.users = users;
    config.preset = dosn::synth::scale_preset(opts);

    // Serial generation: the reference build (and the reference timing —
    // generation as a serial prefix).
    std::uint64_t serial_gen_checksum = 0;
    {
      const auto gen_start = Clock::now();
      const auto serial_input =
          dosn::synth::build_scale_study_input(config, seed);
      s.gen_ms = ms_since(gen_start);
      serial_gen_checksum = input_checksum(serial_input);
    }
    s.gen_peak_rss_mb = dosn::bench::peak_rss_mb();

    // Pipelined generation on the shared runtime: producer thread + SPSC
    // chunk queue + parallel fold stages. Must rebuild the serial input
    // bit for bit.
    const auto gen_pipelined_start = Clock::now();
    const auto input =
        dosn::synth::build_scale_study_input(config, seed, &pool.runtime());
    s.gen_pipelined_ms = ms_since(gen_pipelined_start);
    s.gen_identical = input_checksum(input) == serial_gen_checksum;

    s.cohort_degree = input.cohort_degree;
    s.activities_total = input.total_activities;
    s.activities_retained = input.dataset.trace.size();

    dosn::sim::StreamingStudy study(input.dataset, seed);
    dosn::sim::StreamingStudy::Options options;
    options.cohort_degree = input.cohort_degree;
    options.k_max = 10;
    options.repetitions = 3;
    options.policies = {dosn::placement::PolicyKind::kMaxAv,
                        dosn::placement::PolicyKind::kRandom};
    // A million users yield tens of thousands of degree-d cohort members;
    // cap the evaluated prefix so the sweep time stays bounded while the
    // generation still exercises the full population.
    options.cohort_limit = 20'000;
    s.cohort_size = study.cohort(options.cohort_degree, options.cohort_limit)
                        .size();

    const auto sweep_with = [&](dosn::util::ThreadPool* shared,
                                std::size_t shard_size) {
      auto o = options;
      o.threads = 1;
      o.pool = shared;
      o.shard_size = shard_size;
      return study.replication_sweep(
          input.schedules, input.model_name,
          dosn::placement::Connectivity::kConRep, o);
    };

    auto counters_before = PoolCounters::snapshot();
    auto start = Clock::now();
    const auto serial = sweep_with(nullptr, 1024);
    s.sweep_serial_ms = ms_since(start);
    s.pool_serial = PoolCounters::snapshot().delta_since(counters_before);

    counters_before = PoolCounters::snapshot();
    start = Clock::now();
    const auto parallel = sweep_with(&pool, 1024);
    s.sweep_parallel_ms = ms_since(start);
    s.pool_parallel = PoolCounters::snapshot().delta_since(counters_before);

    counters_before = PoolCounters::snapshot();
    start = Clock::now();
    const auto resharded = sweep_with(&pool, 257);
    s.sweep_reshard_ms = ms_since(start);
    s.pool_reshard = PoolCounters::snapshot().delta_since(counters_before);

    s.checksum = dosn::sim::sweep_checksum(serial);
    s.identical = s.gen_identical &&
                  s.checksum == dosn::sim::sweep_checksum(parallel) &&
                  s.checksum == dosn::sim::sweep_checksum(resharded);
    all_identical &= s.identical;
    s.peak_rss_mb = dosn::bench::peak_rss_mb();

    std::printf(
        "scale N=%-8zu cohort=%zu(deg %zu)  activities=%llu (kept %llu)  "
        "gen=%.0fms gen_pipe=%.0fms  serial=%.0fms  parallel(%zu)=%.0fms  "
        "reshard=%.0fms  steals=%llu  rss=%.0fMiB  identical=%s\n",
        s.users, s.cohort_size, s.cohort_degree,
        static_cast<unsigned long long>(s.activities_total),
        static_cast<unsigned long long>(s.activities_retained), s.gen_ms,
        s.gen_pipelined_ms, s.sweep_serial_ms, parallel_threads,
        s.sweep_parallel_ms, s.sweep_reshard_ms,
        static_cast<unsigned long long>(s.pool_parallel.runtime_steals +
                                        s.pool_reshard.runtime_steals),
        s.peak_rss_mb, s.identical ? "yes" : "NO");
    scenarios.push_back(s);
  }

  if (dosn::obs::enabled()) {
    std::printf("\nobservability snapshot:\n%s\n",
                dosn::obs::to_table(dosn::obs::Registry::global().snapshot())
                    .c_str());
  }

  dosn::bench::write_bench_json(
      "BENCH_scale.json", "scale_study", seed, max_threads,
      [&](dosn::util::JsonWriter& w) {
        dosn::bench::write_hardware_fields(w);
        w.key("scenarios");
        w.begin_array();
        for (const auto& s : scenarios) {
          w.begin_object();
          w.field("name", "scale_" + std::to_string(s.users));
          w.field("users", static_cast<std::uint64_t>(s.users));
          w.field("cohort_degree",
                  static_cast<std::uint64_t>(s.cohort_degree));
          w.field("cohort_size", static_cast<std::uint64_t>(s.cohort_size));
          w.field("activities_total", s.activities_total);
          w.field("activities_retained", s.activities_retained);
          w.field("threads_serial", static_cast<std::uint64_t>(1));
          w.field("threads_parallel",
                  static_cast<std::uint64_t>(parallel_threads));
          dosn::bench::write_hardware_fields(w, parallel_threads);
          w.field("gen_ms", s.gen_ms);
          w.field("gen_pipelined_ms", s.gen_pipelined_ms);
          w.field("gen_identical", s.gen_identical);
          w.field("gen_peak_rss_mb", s.gen_peak_rss_mb);
          w.field("sweep_serial_ms", s.sweep_serial_ms);
          w.field("sweep_parallel_ms", s.sweep_parallel_ms);
          w.field("sweep_reshard_ms", s.sweep_reshard_ms);
          write_pool_counters(w, "pool_serial", s.pool_serial);
          write_pool_counters(w, "pool_parallel", s.pool_parallel);
          write_pool_counters(w, "pool_reshard", s.pool_reshard);
          w.field("checksum", s.checksum);
          w.field("outputs_identical", s.identical);
          w.field("peak_rss_mb", s.peak_rss_mb);
          w.end_object();
        }
        w.end_array();
      });
  std::printf("wrote BENCH_scale.json\n");

  return all_identical ? 0 : 1;
}
