// Million-user scale benchmark: chunked generation plus the streaming
// study engine at N = 100k / 500k / 1M synthetic users, written to
// BENCH_scale.json.
//
// Per population size the harness measures
//   * gen_ms      — chunked dataset construction (graph + all schedules +
//                   the cohort-restricted trace; the full activity trace is
//                   never materialized);
//   * sweep times — the same replication sweep run serial, parallel, and
//                   parallel with a different shard size. The three sweep
//                   outputs are checksummed and must agree bit for bit:
//                   the streaming engine's determinism contract;
//   * peak_rss_mb — getrusage high-water mark after each phase, the memory
//                   envelope the ISSUE acceptance criterion tracks.
//
// Environment knobs: DOSN_SCALE_USERS (comma-separated population sizes,
// default "100000,500000,1000000" — CI smoke runs just 100000),
// DOSN_BENCH_SEED, DOSN_THREADS, DOSN_OBS.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common.hpp"
#include "obs/export.hpp"
#include "sim/streaming.hpp"
#include "synth/scale.hpp"
#include "util/strings.hpp"
#include "util/thread_pool.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

std::vector<std::size_t> scale_users() {
  std::string spec = "100000,500000,1000000";
  if (const char* s = std::getenv("DOSN_SCALE_USERS"); s && *s) spec = s;
  std::vector<std::size_t> out;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    const std::size_t comma = spec.find(',', pos);
    const std::string tok =
        spec.substr(pos, comma == std::string::npos ? comma : comma - pos);
    if (!tok.empty())
      out.push_back(static_cast<std::size_t>(dosn::util::parse_i64(tok)));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

struct Scenario {
  std::size_t users = 0;
  std::size_t cohort_degree = 0;
  std::size_t cohort_size = 0;
  std::uint64_t activities_total = 0;
  std::uint64_t activities_retained = 0;
  double gen_ms = 0;
  double gen_peak_rss_mb = 0;
  double sweep_serial_ms = 0;
  double sweep_parallel_ms = 0;
  double sweep_reshard_ms = 0;
  std::uint64_t checksum = 0;
  bool identical = false;
  double peak_rss_mb = 0;
};

}  // namespace

int main() {
  const std::uint64_t seed = dosn::bench::bench_seed();
  const std::size_t threads = dosn::util::default_thread_count();

  std::vector<Scenario> scenarios;
  bool all_identical = true;

  for (const std::size_t users : scale_users()) {
    Scenario s;
    s.users = users;

    dosn::synth::ScaleInputConfig config;
    dosn::synth::ScaleOptions opts;
    opts.users = users;
    config.preset = dosn::synth::scale_preset(opts);

    const auto gen_start = Clock::now();
    const auto input = dosn::synth::build_scale_study_input(config, seed);
    s.gen_ms = ms_since(gen_start);
    s.gen_peak_rss_mb = dosn::bench::peak_rss_mb();
    s.cohort_degree = input.cohort_degree;
    s.activities_total = input.total_activities;
    s.activities_retained = input.dataset.trace.size();

    dosn::sim::StreamingStudy study(input.dataset, seed);
    dosn::sim::StreamingStudy::Options options;
    options.cohort_degree = input.cohort_degree;
    options.k_max = 10;
    options.repetitions = 3;
    options.policies = {dosn::placement::PolicyKind::kMaxAv,
                        dosn::placement::PolicyKind::kRandom};
    // A million users yield tens of thousands of degree-d cohort members;
    // cap the evaluated prefix so the sweep time stays bounded while the
    // generation still exercises the full population.
    options.cohort_limit = 20'000;
    s.cohort_size = study.cohort(options.cohort_degree, options.cohort_limit)
                        .size();

    const auto sweep_with = [&](std::size_t nthreads,
                                std::size_t shard_size) {
      auto o = options;
      o.threads = nthreads;
      o.shard_size = shard_size;
      return study.replication_sweep(
          input.schedules, input.model_name,
          dosn::placement::Connectivity::kConRep, o);
    };

    auto start = Clock::now();
    const auto serial = sweep_with(1, 1024);
    s.sweep_serial_ms = ms_since(start);

    start = Clock::now();
    const auto parallel = sweep_with(threads, 1024);
    s.sweep_parallel_ms = ms_since(start);

    start = Clock::now();
    const auto resharded = sweep_with(threads, 257);
    s.sweep_reshard_ms = ms_since(start);

    s.checksum = dosn::sim::sweep_checksum(serial);
    s.identical = s.checksum == dosn::sim::sweep_checksum(parallel) &&
                  s.checksum == dosn::sim::sweep_checksum(resharded);
    all_identical &= s.identical;
    s.peak_rss_mb = dosn::bench::peak_rss_mb();

    std::printf(
        "scale N=%-8zu cohort=%zu(deg %zu)  activities=%llu (kept %llu)  "
        "gen=%.0fms  serial=%.0fms  parallel(%zu)=%.0fms  reshard=%.0fms  "
        "rss=%.0fMiB  identical=%s\n",
        s.users, s.cohort_size, s.cohort_degree,
        static_cast<unsigned long long>(s.activities_total),
        static_cast<unsigned long long>(s.activities_retained), s.gen_ms,
        s.sweep_serial_ms, threads, s.sweep_parallel_ms, s.sweep_reshard_ms,
        s.peak_rss_mb, s.identical ? "yes" : "NO");
    scenarios.push_back(s);
  }

  if (dosn::obs::enabled()) {
    std::printf("\nobservability snapshot:\n%s\n",
                dosn::obs::to_table(dosn::obs::Registry::global().snapshot())
                    .c_str());
  }

  dosn::bench::write_bench_json(
      "BENCH_scale.json", "scale_study", seed, threads,
      [&](dosn::util::JsonWriter& w) {
        w.key("scenarios");
        w.begin_array();
        for (const auto& s : scenarios) {
          w.begin_object();
          w.field("name", "scale_" + std::to_string(s.users));
          w.field("users", static_cast<std::uint64_t>(s.users));
          w.field("cohort_degree",
                  static_cast<std::uint64_t>(s.cohort_degree));
          w.field("cohort_size", static_cast<std::uint64_t>(s.cohort_size));
          w.field("activities_total", s.activities_total);
          w.field("activities_retained", s.activities_retained);
          w.field("gen_ms", s.gen_ms);
          w.field("gen_peak_rss_mb", s.gen_peak_rss_mb);
          w.field("sweep_serial_ms", s.sweep_serial_ms);
          w.field("sweep_parallel_ms", s.sweep_parallel_ms);
          w.field("sweep_reshard_ms", s.sweep_reshard_ms);
          w.field("checksum", s.checksum);
          w.field("outputs_identical", s.identical);
          w.field("peak_rss_mb", s.peak_rss_mb);
          w.end_object();
        }
        w.end_array();
      });
  std::printf("wrote BENCH_scale.json\n");

  return all_identical ? 0 : 1;
}
