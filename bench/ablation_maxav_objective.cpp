// Ablation A1 (Sec III-A variants): the MaxAv greedy set cover can target
// three universes — availability, AoD-time, AoD-activity — and the ConRep
// step can use the paper's literal "least overlap" tie-break instead of
// max marginal gain. This harness compares all four MaxAv variants on the
// metric each one optimizes, plus the baseline availability view.
#include "common.hpp"

#include "util/csv.hpp"

int main() {
  using namespace dosn;
  bench::figure_banner(
      "ablationA1", "MaxAv objective / tie-break ablation (FB, Sporadic, "
      "ConRep)",
      "each objective should win on its own metric; the least-overlap "
      "tie-break trades availability for lower replica co-presence");
  const auto env = bench::load_env("facebook");

  struct Variant {
    const char* name;
    placement::PolicyParams params;
  };
  const std::vector<Variant> variants{
      {"objective=availability", {}},
      {"objective=aod-time",
       {.objective = placement::MaxAvObjective::kAoDTime}},
      {"objective=aod-activity",
       {.objective = placement::MaxAvObjective::kAoDActivity}},
      {"least-overlap tie-break", {.conrep_least_overlap = true}},
  };

  sim::Study study(env.dataset, env.seed);
  for (const sim::Metric metric :
       {sim::Metric::kAvailability, sim::Metric::kAodTime,
        sim::Metric::kAodActivity}) {
    std::vector<util::Series> series;
    std::string x_label;
    for (const auto& variant : variants) {
      auto opts = env.options();
      opts.policies = {placement::PolicyKind::kMaxAv};
      opts.policy_params = variant.params;
      const auto sweep = study.replication_sweep(
          onlinetime::ModelKind::kSporadic, {},
          placement::Connectivity::kConRep, opts);
      auto s = sweep.series(metric).front();
      s.name = variant.name;
      series.push_back(std::move(s));
      x_label = sweep.x_label;
    }

    util::ChartOptions copts;
    copts.title =
        std::string("Ablation A1: MaxAv variants on ") + sim::to_string(metric);
    copts.x_label = x_label;
    copts.y_label = sim::to_string(metric);
    copts.y_min = 0.0;
    copts.y_max = 1.0;
    std::fputs(util::render_chart(series, copts).c_str(), stdout);

    const auto id = std::string("ablationA1_") +
                    (metric == sim::Metric::kAvailability   ? "availability"
                     : metric == sim::Metric::kAodTime      ? "aod_time"
                                                            : "aod_activity");
    util::write_series_csv(bench::csv_path(id), x_label, series);
    std::printf("wrote %s\n\n", bench::csv_path(id).c_str());
  }
  return 0;
}
