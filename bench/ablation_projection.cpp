// Ablation A8: the daily-projection approximation vs the real timeline.
//
// The paper measures availability on a single projected 24-hour cycle: a
// user's sessions from *all* trace days count towards one day's coverage.
// On the actual multi-week timeline a replica is only online when it is
// really online. This harness places replicas using the projected model
// (exactly what the paper's system would do) and evaluates the same
// configurations both ways — the gap is the optimism of the projection.
//
// Also runs the temporal-generalization check for MostActive (A9): ranks
// friends on the first 70% of the trace, evaluates AoD-activity on the
// last 30% ("activity measured ... in a predefined time frame in the
// past", Sec III-B).
#include "common.hpp"

#include "graph/degree_stats.hpp"
#include "metrics/availability.hpp"
#include "onlinetime/model.hpp"
#include "sim/evaluate.hpp"
#include "sim/timeline.hpp"
#include "util/csv.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main() {
  using namespace dosn;
  bench::figure_banner(
      "ablationA8",
      "Daily projection vs absolute timeline; MostActive generalization",
      "projected availability overstates timeline availability (sessions "
      "from different weeks cannot substitute for each other); "
      "availability-on-demand survives far better; MostActive ranks from "
      "past activity keep working on future activity");
  const auto env = bench::load_env("facebook");

  const auto model = onlinetime::make_model(onlinetime::ModelKind::kSporadic);
  util::Rng mrng(util::mix64(env.seed, 0xa81));
  const auto projected = model->schedules(env.dataset, mrng);
  util::Rng trng(util::mix64(env.seed, 0xa81));  // same stream: same offsets
  const auto timeline = sim::timeline_sporadic(env.dataset, 20 * 60, trng);

  auto cohort =
      graph::users_with_degree(env.dataset.graph, env.cohort_degree);
  cohort.resize(std::min<std::size_t>(cohort.size(), 120));
  const auto policy = placement::make_policy(placement::PolicyKind::kMaxAv);

  util::TextTable table({"k", "projected avail", "timeline avail",
                         "projected aod-act", "timeline aod-act"});
  util::CsvWriter csv(bench::csv_path("ablationA8_projection"));
  csv.header(std::vector<std::string>{"k", "proj_avail", "timeline_avail",
                                      "proj_aod_act", "timeline_aod_act"});

  for (std::size_t k : {std::size_t{1}, std::size_t{3}, std::size_t{5},
                        std::size_t{10}}) {
    util::RunningStats pa, ta, pact, tact;
    for (graph::UserId u : cohort) {
      placement::PlacementContext ctx;
      ctx.user = u;
      ctx.candidates = env.dataset.graph.contacts(u);
      ctx.schedules = projected;
      ctx.trace = &env.dataset.trace;
      ctx.connectivity = placement::Connectivity::kConRep;
      ctx.max_replicas = k;
      util::Rng prng(util::mix64(env.seed, 0xa82 + u));
      const auto selected = policy->select(ctx, prng);

      const auto proj = sim::evaluate_user(env.dataset, projected, u,
                                           selected,
                                           placement::Connectivity::kConRep);
      const auto real =
          sim::evaluate_on_timeline(env.dataset, timeline, u, selected);
      pa.add(proj.availability);
      ta.add(real.availability);
      pact.add(proj.aod_activity);
      tact.add(real.aod_activity);
    }
    table.add_row(std::to_string(k),
                  {pa.mean(), ta.mean(), pact.mean(), tact.mean()});
    csv.row(std::vector<double>{static_cast<double>(k), pa.mean(), ta.mean(),
                                pact.mean(), tact.mean()});
  }
  std::printf("MaxAv/ConRep placement planned on the projected model:\n\n");
  std::fputs(table.render().c_str(), stdout);
  std::printf("\nwrote %s\n\n", bench::csv_path("ablationA8_projection").c_str());

  // --- A9: MostActive temporal generalization ---------------------------
  const auto split = trace::split_by_time(env.dataset, 0.7);
  util::Rng smrng(util::mix64(env.seed, 0xa91));
  const auto past_schedules = model->schedules(split.past, smrng);

  util::TextTable gen_table({"k", "aod-activity (future, past ranks)",
                             "aod-activity (future, oracle ranks)",
                             "aod-activity (future, random)"});
  util::CsvWriter gen_csv(bench::csv_path("ablationA9_generalization"));
  gen_csv.header(std::vector<std::string>{"k", "past_ranks", "oracle_ranks",
                                          "random"});

  auto run_policy = [&](placement::PolicyKind kind,
                        const trace::Dataset& ranking_dataset, std::size_t k,
                        std::uint64_t salt) {
    const auto pol = placement::make_policy(kind);
    util::RunningStats acc;
    for (graph::UserId u : cohort) {
      placement::PlacementContext ctx;
      ctx.user = u;
      ctx.candidates = env.dataset.graph.contacts(u);
      ctx.schedules = past_schedules;
      ctx.trace = &ranking_dataset.trace;
      ctx.connectivity = placement::Connectivity::kConRep;
      ctx.max_replicas = k;
      util::Rng prng(util::mix64(env.seed, salt + u));
      const auto selected = pol->select(ctx, prng);
      std::vector<interval::DaySchedule> reps;
      for (auto host : selected) reps.push_back(past_schedules[host]);
      const auto profile =
          metrics::profile_schedule(past_schedules[u], reps);
      const auto aod = metrics::aod_activity(split.future.trace, u, profile,
                                             past_schedules);
      acc.add(aod.overall);
    }
    return acc.mean();
  };

  for (std::size_t k : {std::size_t{1}, std::size_t{3}, std::size_t{5}}) {
    const double past_ranks =
        run_policy(placement::PolicyKind::kMostActive, split.past, k, 0xa92);
    const double oracle_ranks =
        run_policy(placement::PolicyKind::kMostActive, split.future, k, 0xa93);
    const double random =
        run_policy(placement::PolicyKind::kRandom, split.past, k, 0xa94);
    gen_table.add_row(std::to_string(k), {past_ranks, oracle_ranks, random});
    gen_csv.row(std::vector<double>{static_cast<double>(k), past_ranks,
                                    oracle_ranks, random});
  }
  std::printf("MostActive ranked on the past 70%%, evaluated on the future "
              "30%% of activities:\n\n");
  std::fputs(gen_table.render().c_str(), stdout);
  std::printf("\nwrote %s\n",
              bench::csv_path("ablationA9_generalization").c_str());
  return 0;
}
