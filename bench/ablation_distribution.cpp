// Ablation A5: behind the cohort means — per-user distributions.
//
// The paper plots cohort averages; this harness reports P10/P50/P90 of
// availability and delay across the degree-10 cohort at a fixed k, plus
// the effect of the EnrichedSporadic model (the paper's "richer activity
// set would increase online time" remark, Sec IV-A).
#include "common.hpp"

#include "util/csv.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main() {
  using namespace dosn;
  bench::figure_banner(
      "ablationA5", "Per-user distributions and the enriched-activity model",
      "availability spreads widely across users at the same degree; "
      "passive-presence sessions lift the whole distribution");
  const auto env = bench::load_env("facebook");
  sim::Study study(env.dataset, env.seed);

  auto opts = env.options();
  constexpr std::size_t kFixedK = 3;

  struct Row {
    const char* label;
    onlinetime::ModelKind model;
    onlinetime::ModelParams params;
  };
  const std::vector<Row> rows{
      {"Sporadic(20min)", onlinetime::ModelKind::kSporadic, {}},
      {"EnrichedSporadic(+1/day)",
       onlinetime::ModelKind::kEnrichedSporadic,
       {.extra_sessions_per_day = 1.0}},
      {"EnrichedSporadic(+3/day)",
       onlinetime::ModelKind::kEnrichedSporadic,
       {.extra_sessions_per_day = 3.0}},
      {"FixedLength(8h)",
       onlinetime::ModelKind::kFixedLength,
       {.window_hours = 8.0}},
  };

  util::TextTable table({"model", "avail P10", "avail P50", "avail P90",
                         "delay P50 (h)", "delay P90 (h)"});
  util::CsvWriter csv(bench::csv_path("ablationA5_distributions"));
  csv.raw_row(std::vector<std::string>{"model", "avail_p10", "avail_p50",
                                       "avail_p90", "delay_p50", "delay_p90"});

  for (const auto& row : rows) {
    const auto samples = study.cohort_samples(
        row.model, row.params, placement::Connectivity::kConRep,
        placement::PolicyKind::kMaxAv, kFixedK, opts);
    std::vector<double> avail, delay;
    for (const auto& s : samples) {
      avail.push_back(s.availability);
      delay.push_back(s.delay_actual_h);
    }
    const double a10 = util::percentile(avail, 0.10);
    const double a50 = util::percentile(avail, 0.50);
    const double a90 = util::percentile(avail, 0.90);
    const double d50 = util::percentile(delay, 0.50);
    const double d90 = util::percentile(delay, 0.90);
    table.add_row(row.label, {a10, a50, a90, d50, d90});
    csv.raw_row(std::vector<std::string>{
        row.label, util::format("%.4f", a10), util::format("%.4f", a50),
        util::format("%.4f", a90), util::format("%.2f", d50),
        util::format("%.2f", d90)});
  }

  std::printf("MaxAv / ConRep / k = %zu, degree-%zu cohort:\n\n", kFixedK,
              env.cohort_degree);
  std::fputs(table.render().c_str(), stdout);
  std::printf("\nwrote %s\n",
              bench::csv_path("ablationA5_distributions").c_str());
  return 0;
}
