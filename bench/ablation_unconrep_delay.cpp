// Ablation A2 (Sec V-C discussion): how much does a third-party relay
// (UnconRep) reduce the update-propagation delay versus pure F2F exchange
// (ConRep)? Also reports the expected/unexpected AoD-activity breakdown
// the paper discusses in Sec IV-B.
#include "common.hpp"

#include "util/csv.hpp"

int main() {
  using namespace dosn;
  bench::figure_banner(
      "ablationA2",
      "ConRep vs UnconRep delay; expected vs unexpected activity (FB)",
      "the relay cuts the worst-case delay substantially (paper: 'the "
      "delay is expected to be lower for UnconRep'); availability for "
      "unexpected activity is a positive side-effect of replication");
  const auto env = bench::load_env("facebook");
  sim::Study study(env.dataset, env.seed);

  // Delay comparison under Sporadic and FixedLength(8h), MaxAv only.
  for (const auto& [suffix, kind, params] :
       {std::tuple{"sporadic", onlinetime::ModelKind::kSporadic,
                   onlinetime::ModelParams{}},
        std::tuple{"fixed8h", onlinetime::ModelKind::kFixedLength,
                   onlinetime::ModelParams{.window_hours = 8.0}}}) {
    auto opts = env.options();
    opts.policies = {placement::PolicyKind::kMaxAv};
    const auto con = study.replication_sweep(kind, params,
                                             placement::Connectivity::kConRep,
                                             opts);
    const auto uncon = study.replication_sweep(
        kind, params, placement::Connectivity::kUnconRep, opts);

    std::vector<util::Series> series;
    auto s1 = con.series(sim::Metric::kDelayActualH).front();
    s1.name = "ConRep (F2F only)";
    auto s2 = uncon.series(sim::Metric::kDelayActualH).front();
    s2.name = "UnconRep (relay)";
    auto s3 = con.series(sim::Metric::kDelayObservedH).front();
    s3.name = "ConRep observed";
    series = {std::move(s1), std::move(s2), std::move(s3)};

    util::ChartOptions copts;
    copts.title = std::string("Ablation A2: delay, ConRep vs UnconRep [") +
                  con.model_name + "]";
    copts.x_label = con.x_label;
    copts.y_label = "delay (hours)";
    std::fputs(util::render_chart(series, copts).c_str(), stdout);
    const auto id = std::string("ablationA2_delay_") + suffix;
    util::write_series_csv(bench::csv_path(id), con.x_label, series);
    std::printf("wrote %s\n\n", bench::csv_path(id).c_str());
  }

  // Expected vs unexpected activity availability (Sporadic, all policies).
  const auto sweep = study.replication_sweep(
      onlinetime::ModelKind::kSporadic, {}, placement::Connectivity::kConRep,
      env.options());
  std::vector<util::Series> breakdown;
  for (const auto metric :
       {sim::Metric::kAodActivity, sim::Metric::kAodActivityExpected,
        sim::Metric::kAodActivityUnexpected}) {
    auto s = sweep.series(metric).front();  // MaxAv curve
    s.name = sim::to_string(metric);
    breakdown.push_back(std::move(s));
  }
  util::ChartOptions copts;
  copts.title = "Ablation A2: expected vs unexpected activity (MaxAv)";
  copts.x_label = sweep.x_label;
  copts.y_label = "fraction served";
  copts.y_min = 0.0;
  copts.y_max = 1.0;
  std::fputs(util::render_chart(breakdown, copts).c_str(), stdout);
  util::write_series_csv(bench::csv_path("ablationA2_activity_breakdown"),
                         sweep.x_label, breakdown);
  std::printf("wrote %s\n",
              bench::csv_path("ablationA2_activity_breakdown").c_str());
  return 0;
}
