// Study-engine benchmark: before/after wall-clock of the paper's
// replication sweep on a ~5k-user synthetic dataset, written to
// BENCH_study_engine.json.
//
// Four runs are timed on identical work (the deterministic MaxAv policy,
// so every run must produce the same curves):
//   * seed      — the pre-change engine, reproduced locally below: serial
//                 cohort loop, full-rescan eager MaxAv, and a full
//                 re-evaluation (evaluate_user) of every replication
//                 prefix 0..k;
//   * eager     — the current engine (incremental prefix evaluation) with
//                 eager MaxAv, serial;
//   * lazy      — the current engine with CELF lazy-greedy MaxAv, serial;
//   * parallel  — lazy plus the deterministic thread pool at DOSN_THREADS
//                 (or hardware concurrency) workers.
// The sweep outputs of all runs are checksummed and must agree exactly —
// every optimization is exact, not an approximation.
//
// Environment knobs: DOSN_BENCH_SEED (default 20120618), DOSN_BENCH_SCALE
// (default 0.23 — ~5k users), DOSN_THREADS, DOSN_OBS.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "common.hpp"
#include "graph/degree_stats.hpp"
#include "obs/export.hpp"
#include "sim/study.hpp"
#include "synth/presets.hpp"
#include "util/thread_pool.hpp"

namespace {

using dosn::sim::Study;
using dosn::sim::SweepResult;
using Clock = std::chrono::steady_clock;

double run_ms(const std::function<SweepResult()>& fn, SweepResult& out) {
  const auto start = Clock::now();
  out = fn();
  const auto stop = Clock::now();
  return std::chrono::duration<double, std::milli>(stop - start).count();
}

/// Order-sensitive digest of every point of every curve; used to verify
/// the engine configurations produce the same sweep bit for bit.
std::uint64_t checksum(const SweepResult& sweep) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  const auto mix = [&h](double v) {
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(v));
    __builtin_memcpy(&bits, &v, sizeof(bits));
    h = (h ^ bits) * 0x100000001b3ULL;
  };
  for (const auto& curve : sweep.policies)
    for (const auto& p : curve.points) {
      mix(p.availability);
      mix(p.aod_time);
      mix(p.aod_activity);
      mix(p.delay_actual_h);
      mix(p.replicas_used);
    }
  return h;
}

/// The engine as it was before the optimizations, reproduced here so the
/// baseline stays honest now that sim::Study always uses the incremental
/// path: one serial pass over the cohort, and every replication prefix
/// evaluated from scratch with evaluate_user (per-prefix profile unions,
/// per-prefix Floyd–Warshall with all pair_delay edges recomputed). The
/// deterministic policies make its curves bit-identical to the new
/// engine's, which the checksum comparison asserts.
SweepResult seed_engine_replication_sweep(
    const dosn::trace::Dataset& dataset, std::uint64_t seed,
    dosn::placement::Connectivity connectivity,
    const Study::Options& options) {
  const auto cohort_users =
      dosn::graph::users_with_degree(dataset.graph, options.cohort_degree);

  dosn::util::Rng sched_rng(dosn::util::mix64(seed, 0x5ced0000));
  dosn::onlinetime::ModelParams params;
  const auto model = dosn::onlinetime::make_model(
      dosn::onlinetime::ModelKind::kSporadic, params);
  const auto schedules = model->schedules(dataset, sched_rng);

  SweepResult result;
  for (std::size_t k = 0; k <= options.k_max; ++k)
    result.xs.push_back(static_cast<double>(k));

  for (const auto kind : options.policies) {
    dosn::placement::PolicyParams pparams = options.policy_params;
    pparams.maxav_lazy = false;
    const auto policy = dosn::placement::make_policy(kind, pparams);
    dosn::util::Rng rng(seed);  // one shared stream, as before

    // Running means per k, in cohort order (mirrors the engine's reducer).
    struct Accum {
      dosn::util::RunningStats availability, aod_time, aod_activity,
          delay_actual, used;
    };
    std::vector<Accum> accum(options.k_max + 1);
    for (const dosn::graph::UserId u : cohort_users) {
      dosn::placement::PlacementContext context;
      context.user = u;
      context.candidates = dataset.graph.contacts(u);
      context.schedules = schedules;
      context.trace = &dataset.trace;
      context.connectivity = connectivity;
      context.max_replicas = options.k_max;
      const auto selected = policy->select(context, rng);
      for (std::size_t k = 0; k <= options.k_max; ++k) {
        const std::size_t take = std::min(k, selected.size());
        const std::span<const dosn::graph::UserId> prefix{selected.data(),
                                                          take};
        const auto m = dosn::sim::evaluate_user(dataset, schedules, u,
                                                prefix, connectivity);
        accum[k].availability.add(m.availability);
        accum[k].aod_time.add(m.aod_time);
        accum[k].aod_activity.add(m.aod_activity);
        accum[k].delay_actual.add(m.delay_actual_h);
        accum[k].used.add(m.replicas_used);
      }
    }

    dosn::sim::PolicyCurve curve;
    curve.policy_name = policy->name();
    curve.policy = kind;
    for (const auto& a : accum) {
      dosn::sim::CohortMetrics c;
      c.availability = a.availability.mean();
      c.aod_time = a.aod_time.mean();
      c.aod_activity = a.aod_activity.mean();
      c.delay_actual_h = a.delay_actual.mean();
      c.replicas_used = a.used.mean();
      curve.points.push_back(c);
    }
    result.policies.push_back(std::move(curve));
  }
  return result;
}

struct Scenario {
  std::string name;
  std::size_t cohort_degree = 10;
  std::size_t k_max = 10;
  double seed_ms = 0, eager_ms = 0, lazy_ms = 0, parallel_ms = 0;
  std::size_t cohort_size = 0;
  bool identical = false;
};

}  // namespace

int main() {
  const std::uint64_t seed = dosn::bench::bench_seed();
  const std::size_t threads = dosn::util::default_thread_count();

  // ~5k post-filter users at the default scale: the Facebook preset filters
  // ~60k raw users down to ~21.9k per unit scale, so scale by 0.23.
  const double scale = dosn::bench::bench_scale(0.23);
  auto preset = dosn::synth::scaled(dosn::synth::facebook_preset(), scale);
  dosn::util::Rng gen_rng(seed);
  const auto dataset = dosn::synth::generate_study_dataset(preset, gen_rng);
  std::printf("dataset: %zu users, %zu activities\n", dataset.num_users(),
              dataset.trace.size());

  Study study(dataset, seed);

  // Two workloads: the paper's degree-10 replication sweep (evaluation
  // bound) and a high-degree cohort with k_max = degree, where both the
  // greedy set cover and the per-prefix delay graphs grow with the degree.
  std::vector<Scenario> scenarios;
  scenarios.push_back({"replication_sweep_degree10", 10, 10});
  const std::size_t heavy_degree = dosn::graph::most_populated_degree(
      dataset.graph, 32, 56);
  scenarios.push_back({"replication_sweep_heavy_degree", heavy_degree,
                       heavy_degree});

  for (auto& s : scenarios) {
    Study::Options options;
    options.cohort_degree = s.cohort_degree;
    options.k_max = s.k_max;
    // MaxAv only: it is the one fully deterministic policy (Random and
    // MostActive's zero-activity filler draw randomness, and the seeding
    // bugfix changed those draws), so the pre-change baseline below stays
    // output-comparable — and it is the policy the optimizations target.
    options.policies = {dosn::placement::PolicyKind::kMaxAv};
    s.cohort_size = study.cohort(s.cohort_degree).size();

    const auto sweep_with = [&](std::size_t nthreads, bool lazy) {
      Study::Options o = options;
      o.threads = nthreads;
      o.policy_params.maxav_lazy = lazy;
      return study.replication_sweep(
          dosn::onlinetime::ModelKind::kSporadic, {},
          dosn::placement::Connectivity::kConRep, o);
    };

    SweepResult seed_out, eager_out, lazy_out, parallel_out;
    s.seed_ms = run_ms(
        [&] {
          return seed_engine_replication_sweep(
              dataset, seed, dosn::placement::Connectivity::kConRep, options);
        },
        seed_out);
    s.eager_ms = run_ms([&] { return sweep_with(1, false); }, eager_out);
    s.lazy_ms = run_ms([&] { return sweep_with(1, true); }, lazy_out);
    s.parallel_ms =
        run_ms([&] { return sweep_with(threads, true); }, parallel_out);
    // NOLINTNEXTLINE(concurrency-mt-unsafe) — serial section between runs.
    if (const char* dbg = std::getenv("DOSN_BENCH_DEBUG"); dbg && *dbg) {
      for (std::size_t p = 0; p < seed_out.policies.size(); ++p)
        for (std::size_t k = 0; k < seed_out.policies[p].points.size(); ++k) {
          const auto& a = seed_out.policies[p].points[k];
          const auto& b = eager_out.policies[p].points[k];
          if (a.availability != b.availability ||
              a.aod_time != b.aod_time ||
              a.aod_activity != b.aod_activity ||
              a.delay_actual_h != b.delay_actual_h ||
              a.replicas_used != b.replicas_used)
            std::printf(
                "DIFF p=%zu k=%zu  av %.17g/%.17g  aodt %.17g/%.17g  "
                "aoda %.17g/%.17g  delay %.17g/%.17g  used %.17g/%.17g\n",
                p, k, a.availability, b.availability, a.aod_time, b.aod_time,
                a.aod_activity, b.aod_activity, a.delay_actual_h,
                b.delay_actual_h, a.replicas_used, b.replicas_used);
        }
    }
    s.identical = checksum(seed_out) == checksum(eager_out) &&
                  checksum(seed_out) == checksum(lazy_out) &&
                  checksum(seed_out) == checksum(parallel_out);

    std::printf(
        "%-32s cohort=%zu  seed=%.1fms  eager=%.1fms  lazy=%.1fms  "
        "parallel(%zu)=%.1fms  speedup=%.2fx  identical=%s\n",
        s.name.c_str(), s.cohort_size, s.seed_ms, s.eager_ms, s.lazy_ms,
        threads, s.parallel_ms, s.seed_ms / s.parallel_ms,
        s.identical ? "yes" : "NO");
  }

  if (dosn::obs::enabled()) {
    std::printf("\nobservability snapshot:\n%s\n",
                dosn::obs::to_table(dosn::obs::Registry::global().snapshot())
                    .c_str());
  }

  dosn::bench::write_bench_json(
      "BENCH_study_engine.json", "study_engine", seed, threads,
      [&](dosn::util::JsonWriter& w) {
        w.field("dataset_users",
                static_cast<std::uint64_t>(dataset.num_users()));
        w.field("scale", scale);
        w.field("hardware_concurrency",
                static_cast<std::uint64_t>(std::thread::hardware_concurrency()));
        w.key("scenarios");
        w.begin_array();
        for (const auto& s : scenarios) {
          w.begin_object();
          w.field("name", s.name);
          w.field("cohort_degree",
                  static_cast<std::uint64_t>(s.cohort_degree));
          w.field("cohort_size", static_cast<std::uint64_t>(s.cohort_size));
          w.field("k_max", static_cast<std::uint64_t>(s.k_max));
          w.field("seed_engine_ms", s.seed_ms);
          w.field("incremental_eager_ms", s.eager_ms);
          w.field("incremental_lazy_ms", s.lazy_ms);
          w.field("parallel_lazy_ms", s.parallel_ms);
          w.field("speedup_vs_seed", s.seed_ms / s.parallel_ms);
          w.field("outputs_identical", s.identical);
          w.end_object();
        }
        w.end_array();
      });
  std::printf("wrote BENCH_study_engine.json\n");

  bool all_identical = true;
  for (const auto& s : scenarios) all_identical &= s.identical;
  return all_identical ? 0 : 1;
}
