// Ablation A7: the privacy view — minimum replication degree per target.
//
// The paper's privacy requirement (Sec II-B2) wants the replication degree
// *minimized*: every replica is potential exposure. Its conclusion states
// a "low replication degree (~40% of friends)" suffices for high
// availability-on-demand under realistic online-time models. This harness
// computes, per cohort user, the smallest MaxAv prefix achieving an
// AoD-time target, and reports the distribution — the paper's claim in
// distributional form.
#include "common.hpp"

#include <algorithm>

#include "graph/degree_stats.hpp"
#include "onlinetime/model.hpp"
#include "sim/evaluate.hpp"
#include "util/csv.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main() {
  using namespace dosn;
  bench::figure_banner(
      "ablationA7", "Minimum replication degree for an AoD-time target",
      "roughly 40-50% of friends suffice for high availability-on-demand "
      "under Sporadic/RandomLength/Fixed(8h); Fixed(2h) cannot reach it");
  const auto env = bench::load_env("facebook");

  struct ModelRow {
    const char* label;
    onlinetime::ModelKind kind;
    onlinetime::ModelParams params;
  };
  const std::vector<ModelRow> models{
      {"Sporadic(20min)", onlinetime::ModelKind::kSporadic, {}},
      {"RandomLength", onlinetime::ModelKind::kRandomLength, {}},
      {"FixedLength(8h)",
       onlinetime::ModelKind::kFixedLength,
       {.window_hours = 8.0}},
      {"FixedLength(2h)",
       onlinetime::ModelKind::kFixedLength,
       {.window_hours = 2.0}},
  };
  const std::vector<double> targets{0.90, 0.95, 0.99};

  const auto cohort =
      graph::users_with_degree(env.dataset.graph, env.cohort_degree);
  const auto policy = placement::make_policy(placement::PolicyKind::kMaxAv);

  util::TextTable table({"model", "target", "median k", "P90 k",
                         "% needing <=40% of friends", "% unreachable"});
  util::CsvWriter csv(bench::csv_path("ablationA7_min_replication"));
  csv.raw_row(std::vector<std::string>{"model", "target", "median_k", "p90_k",
                                       "pct_le_40pct", "pct_unreachable"});

  for (const auto& row : models) {
    const auto model = onlinetime::make_model(row.kind, row.params);
    util::Rng mrng(util::mix64(env.seed, 0xa71));
    const auto schedules = model->schedules(env.dataset, mrng);

    // For each user: MaxAv selection once, then the smallest prefix
    // reaching each target.
    std::vector<std::vector<double>> min_k(targets.size());
    std::vector<std::size_t> unreachable(targets.size(), 0);
    for (graph::UserId u : cohort) {
      placement::PlacementContext ctx;
      ctx.user = u;
      ctx.candidates = env.dataset.graph.contacts(u);
      ctx.schedules = schedules;
      ctx.trace = &env.dataset.trace;
      ctx.connectivity = placement::Connectivity::kConRep;
      ctx.max_replicas = env.cohort_degree;
      util::Rng prng(util::mix64(env.seed, 0xa72 + u));
      const auto selected = policy->select(ctx, prng);

      for (std::size_t ti = 0; ti < targets.size(); ++ti) {
        bool reached = false;
        for (std::size_t k = 0; k <= selected.size(); ++k) {
          const std::span<const graph::UserId> prefix{selected.data(), k};
          const auto m = sim::evaluate_user(env.dataset, schedules, u, prefix,
                                            placement::Connectivity::kConRep);
          if (m.aod_time >= targets[ti]) {
            min_k[ti].push_back(static_cast<double>(k));
            reached = true;
            break;
          }
        }
        if (!reached) ++unreachable[ti];
      }
    }

    for (std::size_t ti = 0; ti < targets.size(); ++ti) {
      const double total = static_cast<double>(cohort.size());
      const double pct_unreach =
          100.0 * static_cast<double>(unreachable[ti]) / total;
      double median = 0, p90 = 0, pct40 = 0;
      if (!min_k[ti].empty()) {
        median = util::percentile(min_k[ti], 0.5);
        p90 = util::percentile(min_k[ti], 0.9);
        const double threshold =
            0.4 * static_cast<double>(env.cohort_degree);
        const auto count40 = std::count_if(
            min_k[ti].begin(), min_k[ti].end(),
            [&](double k) { return k <= threshold; });
        pct40 = 100.0 * static_cast<double>(count40) / total;
      }
      table.add_row(std::string(row.label) + " @" +
                        util::format("%.2f", targets[ti]),
                    {targets[ti], median, p90, pct40, pct_unreach});
      csv.raw_row(std::vector<std::string>{
          row.label, util::format("%.2f", targets[ti]),
          util::format("%.1f", median), util::format("%.1f", p90),
          util::format("%.1f", pct40), util::format("%.1f", pct_unreach)});
    }
  }

  std::printf("MaxAv / ConRep, degree-%zu cohort (%zu users):\n\n",
              env.cohort_degree, cohort.size());
  std::fputs(table.render().c_str(), stdout);
  std::printf("\nwrote %s\n",
              bench::csv_path("ablationA7_min_replication").c_str());
  return 0;
}
