// Ablation A4: the *executed* system versus the analytic metrics.
//
// For a sample of cohort users, places replicas (MaxAv/ConRep), then runs
// the profile-level event simulator: friends write wall posts through
// online replicas and probe the profile during their own online time. The
// empirical write success rate is the executed counterpart of
// availability-on-demand-activity, the read success rate of
// availability-on-demand-time, and read staleness is the delay metric as
// readers actually experience it.
#include "common.hpp"

#include "graph/degree_stats.hpp"
#include "net/profile_sync.hpp"
#include "onlinetime/model.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

int main() {
  using namespace dosn;
  bench::figure_banner(
      "ablationA4",
      "Executed system vs analytic metrics (reader experience)",
      "empirical read/write success at each k tracks the analytic AoD "
      "curves; realized staleness stays below the analytic worst-case "
      "delay");
  const auto env = bench::load_env("facebook");

  const auto model = onlinetime::make_model(onlinetime::ModelKind::kSporadic);
  util::Rng mrng(util::mix64(env.seed, 0xab4));
  const auto schedules = model->schedules(env.dataset, mrng);

  auto cohort =
      graph::users_with_degree(env.dataset.graph, env.cohort_degree);
  cohort.resize(std::min<std::size_t>(cohort.size(), 40));

  sim::Study study(env.dataset, env.seed);
  util::TextTable table({"k", "analytic aod-time", "empirical read ok",
                         "analytic aod-activity", "empirical write ok",
                         "mean missing posts", "max staleness (h)"});
  util::CsvWriter csv(bench::csv_path("ablationA4_reader_experience"));
  csv.header(std::vector<std::string>{"k", "aod_time", "read_ok",
                                      "aod_activity", "write_ok",
                                      "mean_missing", "max_staleness_h"});

  for (std::size_t k : {std::size_t{1}, std::size_t{3}, std::size_t{5},
                        std::size_t{8}}) {
    util::Rng prng(util::mix64(env.seed, 0xab5 + k));
    const auto policy = placement::make_policy(placement::PolicyKind::kMaxAv);

    util::RunningStats read_ok, write_ok, missing;
    double max_staleness_h = 0.0;
    util::RunningStats aod_time, aod_activity;

    for (graph::UserId u : cohort) {
      placement::PlacementContext ctx;
      ctx.user = u;
      ctx.candidates = env.dataset.graph.contacts(u);
      ctx.schedules = schedules;
      ctx.trace = &env.dataset.trace;
      ctx.connectivity = placement::Connectivity::kConRep;
      ctx.max_replicas = k;
      const auto selected = policy->select(ctx, prng);

      // Analytic view.
      const auto metrics_view = sim::evaluate_user(
          env.dataset, schedules, u, selected,
          placement::Connectivity::kConRep);
      aod_time.add(metrics_view.aod_time);
      aod_activity.add(metrics_view.aod_activity);

      // Executed view.
      std::vector<interval::DaySchedule> nodes{schedules[u]};
      for (auto host : selected) nodes.push_back(schedules[host]);
      std::vector<interval::DaySchedule> readers;
      for (auto f : env.dataset.graph.contacts(u))
        readers.push_back(schedules[f]);

      bool any_reader = false;
      for (const auto& r : readers) any_reader |= !r.empty();
      if (!any_reader) continue;

      net::ProfileSyncConfig cfg;
      cfg.horizon_days = 10;
      util::Rng erng(util::mix64(env.seed, 0xab6 + u));
      const auto reads = net::reads_within_schedules(readers, 200, 10, erng);
      std::vector<net::WriteEvent> writes;
      {
        // Friends attempt writes at their (projected) trace activity times.
        for (const auto& a : env.dataset.trace.received_by(u)) {
          const auto day = static_cast<net::SimTime>(
              erng.below(10));
          writes.push_back(
              {day * interval::kDaySeconds +
                   interval::time_of_day(a.timestamp),
               a.creator});
        }
        std::sort(writes.begin(), writes.end(),
                  [](const net::WriteEvent& a, const net::WriteEvent& b) {
                    return a.time < b.time;
                  });
      }
      const auto report =
          net::simulate_profile_sync(nodes, readers, writes, reads, cfg);
      read_ok.add(report.read_success_rate);
      write_ok.add(report.write_success_rate);
      missing.add(report.mean_missing);
      max_staleness_h =
          std::max(max_staleness_h,
                   static_cast<double>(report.max_staleness) / 3600.0);
    }

    table.add_row(std::to_string(k),
                  {aod_time.mean(), read_ok.mean(), aod_activity.mean(),
                   write_ok.mean(), missing.mean(), max_staleness_h});
    csv.row(std::vector<double>{static_cast<double>(k), aod_time.mean(),
                                read_ok.mean(), aod_activity.mean(),
                                write_ok.mean(), missing.mean(),
                                max_staleness_h});
  }

  std::fputs(table.render().c_str(), stdout);
  std::printf("\nwrote %s\n",
              bench::csv_path("ablationA4_reader_experience").c_str());
  return 0;
}
