// Ablation A7: fault resilience — what injected churn, wire loss, and node
// crashes cost, and what the hardened protocols claw back.
//
// Three scenarios, all exported to BENCH_fault_resilience.json with
// correctness booleans the bench-regression gate enforces:
//
//   * resilience_sweep       — Study::resilience_sweep over fault intensity
//     at a fixed k (MaxAv, ConRep). Checks: the zero-intensity column is
//     bit-identical to the ideal replication sweep at the same k, and the
//     availability curve degrades monotonically — the nested-realization
//     guarantee holds exactly, not just in expectation.
//   * gossip_retransmission  — the anti-entropy protocol on cohort replica
//     groups under wire loss. Checks: the zero plan with retransmission
//     *enabled* reproduces the unfaulted reports bit for bit, and under
//     loss the hardened protocol beats fire-and-forget on realized delay
//     without losing deliveries.
//   * dht_failover           — a Chord ring with a plan-chosen fraction of
//     nodes crashed. Checks: lookups fail over through successor lists,
//     stabilize() heals the ring and re-replicates every surviving key,
//     and same-seed lookups are reproducible.
//
// Environment knobs: DOSN_BENCH_SEED (default 20120618), DOSN_BENCH_SCALE
// (default 0.12), DOSN_THREADS, DOSN_OBS.
#include <chrono>
#include <cstdio>
#include <vector>

#include "common.hpp"
#include "graph/degree_stats.hpp"
#include "net/dht.hpp"
#include "net/fault.hpp"
#include "net/gossip.hpp"
#include "onlinetime/model.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace dosn;
using Clock = std::chrono::steady_clock;

bool metrics_equal(const sim::CohortMetrics& a, const sim::CohortMetrics& b) {
  return a.availability == b.availability &&
         a.max_availability == b.max_availability &&
         a.aod_time == b.aod_time && a.aod_activity == b.aod_activity &&
         a.aod_activity_expected == b.aod_activity_expected &&
         a.aod_activity_unexpected == b.aod_activity_unexpected &&
         a.delay_actual_h == b.delay_actual_h &&
         a.delay_observed_h == b.delay_observed_h &&
         a.replicas_used == b.replicas_used && a.cohort_size == b.cohort_size;
}

bool reports_equal(const net::GossipReport& a, const net::GossipReport& b) {
  return a.arrival == b.arrival && a.max_delay == b.max_delay &&
         a.mean_delay == b.mean_delay && a.all_delivered == b.all_delivered &&
         a.deferred_writes == b.deferred_writes &&
         a.messages_sent == b.messages_sent &&
         a.messages_lost == b.messages_lost &&
         a.posts_shipped == b.posts_shipped &&
         a.sync_rounds == b.sync_rounds &&
         a.messages_dropped == b.messages_dropped &&
         a.retransmits == b.retransmits;
}

/// Delivery rate and realized mean delay over (write, replica) pairs.
struct DeliveryTally {
  std::size_t expected = 0, delivered = 0;
  double delay_sum = 0.0;
  double rate() const {
    return expected ? static_cast<double>(delivered) /
                          static_cast<double>(expected)
                    : 1.0;
  }
  double mean_delay_h() const {
    return delivered ? delay_sum / static_cast<double>(delivered) / 3600.0
                     : 0.0;
  }
};

void tally(DeliveryTally& t, std::span<const interval::DaySchedule> group,
           std::span<const net::GossipWrite> writes,
           const net::GossipReport& r) {
  for (std::size_t w = 0; w < writes.size(); ++w)
    for (std::size_t n = 1; n < group.size(); ++n) {
      if (group[n].empty()) continue;
      ++t.expected;
      if (r.arrival[w][n]) {
        ++t.delivered;
        t.delay_sum += static_cast<double>(*r.arrival[w][n] - writes[w].time);
      }
    }
}

}  // namespace

int main() {
  const std::uint64_t seed = bench::bench_seed();
  const std::size_t threads = util::default_thread_count();
  const double scale = bench::bench_scale(0.12);

  bench::figure_banner(
      "ablationA7", "Fault resilience — injected faults vs hardened protocols",
      "availability degrades monotonically with fault intensity; "
      "retransmission recovers most of the wire-loss delay; DHT lookups "
      "survive crashes through successor lists until stabilize() heals");

  auto preset = synth::scaled(synth::facebook_preset(), scale);
  util::Rng gen_rng(seed);
  const auto dataset = synth::generate_study_dataset(preset, gen_rng);
  std::size_t degree = 10;
  if (graph::users_with_degree(dataset.graph, degree).size() < 20)
    degree = graph::most_populated_degree(dataset.graph, 5, 15);
  std::printf("dataset: %zu users, cohort degree %zu (%zu users)\n\n",
              dataset.num_users(), degree,
              graph::users_with_degree(dataset.graph, degree).size());

  // --- Scenario 1: analytic resilience sweep -------------------------------
  const std::size_t k = 5;
  const std::vector<double> intensities{0.0, 0.25, 0.5, 0.75, 1.0};
  net::FaultPlan plan;
  plan.seed = 0xfa17;
  plan.session_no_show = 0.3;
  plan.session_truncate = 0.5;
  plan.truncate_max_fraction = 0.6;

  sim::Study study(dataset, seed);
  sim::Study::Options options;
  options.cohort_degree = degree;
  options.k_max = k;
  options.threads = threads;
  options.policies = {placement::PolicyKind::kMaxAv};

  const auto t0 = Clock::now();
  const auto sweep = study.resilience_sweep(
      onlinetime::ModelKind::kSporadic, {}, placement::Connectivity::kConRep,
      plan, intensities, k, options);
  const double sweep_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
  const auto ideal = study.replication_sweep(
      onlinetime::ModelKind::kSporadic, {}, placement::Connectivity::kConRep,
      options);

  const auto& points = sweep.policies[0].points;
  const bool zero_matches_ideal =
      metrics_equal(points.front(), ideal.policies[0].points[k]);
  bool monotone = true;
  for (std::size_t i = 1; i < points.size(); ++i)
    monotone &= points[i].availability <= points[i - 1].availability;
  const bool degrades = points.back().availability <
                        points.front().availability;
  const bool sweep_ok = zero_matches_ideal && monotone && degrades;

  std::printf("resilience sweep (MaxAv, ConRep, k=%zu, %.0fms):\n", k,
              sweep_ms);
  for (std::size_t i = 0; i < intensities.size(); ++i)
    std::printf("  intensity %.2f  availability %.4f  aod %.4f\n",
                intensities[i], points[i].availability, points[i].aod_time);
  std::printf("  zero column == ideal sweep at k: %s, monotone: %s\n\n",
              zero_matches_ideal ? "yes" : "NO", monotone ? "yes" : "NO");

  // --- Scenario 2: gossip retransmission under wire loss -------------------
  const auto model = onlinetime::make_model(onlinetime::ModelKind::kSporadic);
  util::Rng mrng(util::mix64(seed, 0xa7f));
  const auto schedules = model->schedules(dataset, mrng);
  auto cohort = graph::users_with_degree(dataset.graph, degree);
  cohort.resize(std::min<std::size_t>(cohort.size(), 12));

  const auto policy = placement::make_policy(placement::PolicyKind::kMaxAv);
  std::vector<std::vector<interval::DaySchedule>> groups;
  for (graph::UserId u : cohort) {
    placement::PlacementContext ctx;
    ctx.user = u;
    ctx.candidates = dataset.graph.contacts(u);
    ctx.schedules = schedules;
    ctx.trace = &dataset.trace;
    ctx.connectivity = placement::Connectivity::kConRep;
    ctx.max_replicas = k;
    util::Rng prng(util::mix64(seed, 0xa7e));
    const auto selected = policy->select(ctx, prng);
    if (selected.empty()) continue;
    std::vector<interval::DaySchedule> group{schedules[u]};
    for (auto host : selected) group.push_back(schedules[host]);
    groups.push_back(std::move(group));
  }

  bool gossip_zero_identity = true;
  DeliveryTally plain_tally, hardened_tally;
  std::uint64_t retransmits = 0, wire_drops = 0;
  for (std::size_t g = 0; g < groups.size(); ++g) {
    const auto& group = groups[g];
    util::Rng wrng(util::mix64(seed, 0xa7d, g));
    const auto specs =
        net::updates_within_schedules({group.data(), 1}, 16, 12, wrng);
    std::vector<net::GossipWrite> writes;
    for (const auto& s : specs)
      writes.push_back({s.time, 0, static_cast<graph::UserId>(g)});

    net::GossipConfig base;
    base.sync_period = 300;
    base.link_latency = 1;
    base.horizon_days = 14;
    const auto run = [&](const net::GossipConfig& cfg) {
      util::Rng rng(util::mix64(seed, 0xa7c, g));
      return net::simulate_gossip(group, writes, cfg, rng);
    };

    // Zero plan, retransmission enabled: must be byte-for-byte the
    // unfaulted protocol (the hardened path consumes no extra randomness).
    net::GossipConfig zero_retr = base;
    zero_retr.max_retransmits = 6;
    gossip_zero_identity &= reports_equal(run(base), run(zero_retr));

    net::GossipConfig lossy = base;
    lossy.faults.seed = util::mix64(0xfa17, g);
    lossy.faults.message_drop = 0.4;
    net::GossipConfig hardened = lossy;
    hardened.max_retransmits = 6;
    hardened.retransmit_timeout = 30;
    hardened.retransmit_backoff_cap = 240;

    const auto lossy_report = run(lossy);
    const auto hardened_report = run(hardened);
    tally(plain_tally, group, writes, lossy_report);
    tally(hardened_tally, group, writes, hardened_report);
    retransmits += hardened_report.retransmits;
    wire_drops += hardened_report.messages_dropped;
  }
  const bool retrans_beats =
      hardened_tally.rate() >= plain_tally.rate() &&
      hardened_tally.mean_delay_h() < plain_tally.mean_delay_h();

  // Per-intensity effort accounting: the hardened protocol re-run with
  // the wire-loss plan scaled at each intensity, recording the
  // retransmit / wire-drop totals and their increments between adjacent
  // intensities (the marginal cost of each loss step). The zero column
  // must be all-quiet and the full column must reproduce the totals of
  // the headline run above (same plan, f = 1).
  const std::vector<double> drop_intensities{0.0, 0.25, 0.5, 0.75, 1.0};
  std::vector<std::uint64_t> retrans_by_intensity, drops_by_intensity;
  for (const double f : drop_intensities) {
    std::uint64_t rt = 0, dr = 0;
    for (std::size_t g = 0; g < groups.size(); ++g) {
      const auto& group = groups[g];
      util::Rng wrng(util::mix64(seed, 0xa7d, g));
      const auto specs =
          net::updates_within_schedules({group.data(), 1}, 16, 12, wrng);
      std::vector<net::GossipWrite> writes;
      for (const auto& s : specs)
        writes.push_back({s.time, 0, static_cast<graph::UserId>(g)});

      net::GossipConfig hardened;
      hardened.sync_period = 300;
      hardened.link_latency = 1;
      hardened.horizon_days = 14;
      hardened.max_retransmits = 6;
      hardened.retransmit_timeout = 30;
      hardened.retransmit_backoff_cap = 240;
      net::FaultPlan lossy_plan;
      lossy_plan.seed = util::mix64(0xfa17, g);
      lossy_plan.message_drop = 0.4;
      hardened.faults = net::scaled(lossy_plan, f);

      util::Rng rng(util::mix64(seed, 0xa7c, g));
      const auto report = net::simulate_gossip(group, writes, hardened, rng);
      rt += report.retransmits;
      dr += report.messages_dropped;
    }
    retrans_by_intensity.push_back(rt);
    drops_by_intensity.push_back(dr);
  }
  const bool per_intensity_consistent =
      retrans_by_intensity.front() == 0 && drops_by_intensity.front() == 0 &&
      retrans_by_intensity.back() == retransmits &&
      drops_by_intensity.back() == wire_drops;
  const bool gossip_ok =
      gossip_zero_identity && retrans_beats && per_intensity_consistent;

  std::printf("gossip under 40%% wire loss (%zu replica groups):\n",
              groups.size());
  std::printf("  fire-and-forget: delivery %.4f, mean delay %.2fh\n",
              plain_tally.rate(), plain_tally.mean_delay_h());
  std::printf("  retransmission:  delivery %.4f, mean delay %.2fh "
              "(%llu retransmits, %llu drops)\n",
              hardened_tally.rate(), hardened_tally.mean_delay_h(),
              static_cast<unsigned long long>(retransmits),
              static_cast<unsigned long long>(wire_drops));
  std::printf("  per-intensity retransmits:");
  for (std::size_t i = 0; i < drop_intensities.size(); ++i)
    std::printf(" %.2f:%llu/%llu", drop_intensities[i],
                static_cast<unsigned long long>(retrans_by_intensity[i]),
                static_cast<unsigned long long>(drops_by_intensity[i]));
  std::printf("\n  zero-plan identity: %s, beats fire-and-forget: %s, "
              "per-intensity consistent: %s\n\n",
              gossip_zero_identity ? "yes" : "NO",
              retrans_beats ? "yes" : "NO",
              per_intensity_consistent ? "yes" : "NO");

  // --- Scenario 3: DHT crash failover --------------------------------------
  const std::size_t ring_nodes = 64, keys = 200;
  net::FaultPlan dht_plan;
  dht_plan.seed = util::mix64(seed, 0xd47);
  dht_plan.dht_crash = 0.3;
  net::FaultInjector dht_inj(dht_plan);

  net::DhtRing ring(3);
  std::vector<std::uint64_t> ids;
  for (std::size_t i = 0; i < ring_nodes; ++i) {
    ids.push_back(util::mix64(seed, 0x1d, i));
    ring.join(ids.back());
  }
  for (std::size_t i = 0; i < keys; ++i)
    ring.put("profile:" + std::to_string(i), "v" + std::to_string(i));

  std::size_t crashed = 0;
  for (const auto id : ids)
    if (dht_inj.dht_crashed(id)) crashed += ring.crash(id) ? 1 : 0;
  dht_inj.flush_stats();

  const auto lookup_all = [&](std::size_t& failed, std::size_t& probes,
                              std::size_t& hops) {
    std::vector<net::DhtRing::Lookup> out;
    util::Rng rng(util::mix64(seed, 0x100));
    for (std::size_t i = 0; i < keys; ++i) {
      out.push_back(ring.lookup("profile:" + std::to_string(i), rng));
      failed += out.back().ok ? 0 : 1;
      probes += out.back().failed_probes;
      hops += out.back().hops;
    }
    return out;
  };

  std::size_t failed_before = 0, probes_before = 0, hops_before = 0;
  const auto first = lookup_all(failed_before, probes_before, hops_before);
  std::size_t failed_rerun = 0, probes_rerun = 0, hops_rerun = 0;
  const auto rerun = lookup_all(failed_rerun, probes_rerun, hops_rerun);
  bool deterministic = first.size() == rerun.size();
  for (std::size_t i = 0; deterministic && i < first.size(); ++i)
    deterministic = first[i].owner == rerun[i].owner &&
                    first[i].hops == rerun[i].hops &&
                    first[i].failed_probes == rerun[i].failed_probes &&
                    first[i].ok == rerun[i].ok;

  ring.stabilize();
  std::size_t failed_after = 0, probes_after = 0, hops_after = 0;
  lookup_all(failed_after, probes_after, hops_after);
  std::size_t keys_lost = 0;
  bool survivors_readable = true;
  for (std::size_t i = 0; i < keys; ++i) {
    if (ring.get("profile:" + std::to_string(i)))
      continue;
    ++keys_lost;  // every replica crashed before stabilize could heal
  }
  survivors_readable = ring.stored_entries() == (keys - keys_lost) * 3;
  const bool dht_ok = failed_after == 0 && probes_after == 0 &&
                      survivors_readable && deterministic &&
                      probes_before > 0;

  std::printf("dht failover (%zu nodes, %zu crashed, %zu keys x3):\n",
              ring_nodes, crashed, keys);
  std::printf("  before stabilize: %zu failed lookups, %zu failed probes, "
              "%zu hops\n", failed_before, probes_before, hops_before);
  std::printf("  after stabilize:  %zu failed lookups, %zu failed probes, "
              "%zu keys lost, re-replicated entries %zu\n",
              failed_after, probes_after, keys_lost, ring.stored_entries());
  std::printf("  deterministic lookups: %s\n\n", deterministic ? "yes" : "NO");

  bench::write_bench_json(
      "BENCH_fault_resilience.json", "fault_resilience", seed, threads,
      [&](util::JsonWriter& w) {
        w.field("dataset_users", static_cast<std::uint64_t>(dataset.num_users()));
        w.field("scale", scale);
        w.key("scenarios");
        w.begin_array();

        w.begin_object();
        w.field("name", "resilience_sweep");
        w.field("cohort_degree", static_cast<std::uint64_t>(degree));
        w.field("k", static_cast<std::uint64_t>(k));
        w.field("sweep_ms", sweep_ms);
        w.key("intensities");
        w.begin_array();
        for (const double f : intensities) w.value(f);
        w.end_array();
        w.key("availability");
        w.begin_array();
        for (const auto& p : points) w.value(p.availability);
        w.end_array();
        w.field("zero_matches_ideal", zero_matches_ideal);
        w.field("availability_monotone", monotone);
        w.field("degrades_at_full_intensity", degrades);
        w.field("outputs_identical", sweep_ok);
        w.end_object();

        w.begin_object();
        w.field("name", "gossip_retransmission");
        w.field("groups", static_cast<std::uint64_t>(groups.size()));
        w.field("message_drop", 0.4);
        w.field("delivery_plain", plain_tally.rate());
        w.field("delivery_hardened", hardened_tally.rate());
        w.field("mean_delay_plain_h", plain_tally.mean_delay_h());
        w.field("mean_delay_hardened_h", hardened_tally.mean_delay_h());
        w.field("retransmits", retransmits);
        w.field("wire_drops", wire_drops);
        w.key("drop_intensities");
        w.begin_array();
        for (const double f : drop_intensities) w.value(f);
        w.end_array();
        w.key("retransmits_by_intensity");
        w.begin_array();
        for (const auto v : retrans_by_intensity) w.value(v);
        w.end_array();
        w.key("wire_drops_by_intensity");
        w.begin_array();
        for (const auto v : drops_by_intensity) w.value(v);
        w.end_array();
        w.key("retransmit_deltas");
        w.begin_array();
        for (std::size_t i = 1; i < retrans_by_intensity.size(); ++i)
          w.value(static_cast<std::int64_t>(retrans_by_intensity[i]) -
                  static_cast<std::int64_t>(retrans_by_intensity[i - 1]));
        w.end_array();
        w.key("wire_drop_deltas");
        w.begin_array();
        for (std::size_t i = 1; i < drops_by_intensity.size(); ++i)
          w.value(static_cast<std::int64_t>(drops_by_intensity[i]) -
                  static_cast<std::int64_t>(drops_by_intensity[i - 1]));
        w.end_array();
        w.field("per_intensity_consistent", per_intensity_consistent);
        w.field("zero_plan_identity", gossip_zero_identity);
        w.field("beats_fire_and_forget", retrans_beats);
        w.field("outputs_identical", gossip_ok);
        w.end_object();

        w.begin_object();
        w.field("name", "dht_failover");
        w.field("nodes", static_cast<std::uint64_t>(ring_nodes));
        w.field("crashed", static_cast<std::uint64_t>(crashed));
        w.field("keys", static_cast<std::uint64_t>(keys));
        w.field("keys_lost", static_cast<std::uint64_t>(keys_lost));
        w.field("failed_lookups_before_stabilize",
                static_cast<std::uint64_t>(failed_before));
        w.field("failed_probes_before_stabilize",
                static_cast<std::uint64_t>(probes_before));
        w.field("failed_lookups_after_stabilize",
                static_cast<std::uint64_t>(failed_after));
        w.field("lookups_deterministic", deterministic);
        w.field("stabilize_rereplicates", survivors_readable);
        w.field("outputs_identical", dht_ok);
        w.end_object();

        w.end_array();
      });
  std::printf("wrote BENCH_fault_resilience.json\n");

  return (sweep_ok && gossip_ok && dht_ok) ? 0 : 1;
}
