// Figure 8: Facebook, ConRep, Sporadic model — effect of the session
// length (100 s .. 100 000 s, log axis) on all four metrics at a fixed
// replication degree of 3.
#include "common.hpp"

int main() {
  using namespace dosn;
  bench::figure_banner(
      "fig08",
      "Facebook-ConRep: effect of session length (Sporadic, k = 3)",
      "longer sessions boost every metric; availability reaches ~1.0 above "
      "10^4 s; the propagation delay falls sharply with session length");
  const auto env = bench::load_env("facebook");

  const std::vector<interval::Seconds> lengths{100,   300,    1000,  3000,
                                               10000, 30000,  100000};
  sim::Study study(env.dataset, env.seed);
  const auto sweep = study.session_length_sweep(
      lengths, /*k=*/3, placement::Connectivity::kConRep, env.options(3));

  bench::report_metric("fig08a_availability",
                       "Fig 8a: availability vs session length", sweep,
                       sim::Metric::kAvailability, /*log_x=*/true);
  bench::report_metric("fig08b_aod_time",
                       "Fig 8b: AoD-time vs session length", sweep,
                       sim::Metric::kAodTime, /*log_x=*/true);
  bench::report_metric("fig08c_aod_activity",
                       "Fig 8c: AoD-activity vs session length", sweep,
                       sim::Metric::kAodActivity, /*log_x=*/true);
  bench::report_metric("fig08d_delay",
                       "Fig 8d: update delay vs session length", sweep,
                       sim::Metric::kDelayActualH, /*log_x=*/true);
  return 0;
}
