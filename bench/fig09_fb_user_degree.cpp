// Figure 9: Facebook, ConRep, Sporadic model — effect of the user degree
// (1..10) with the replication degree set to the maximum possible (= the
// user degree): availability and update-propagation delay.
#include "common.hpp"

int main() {
  using namespace dosn;
  bench::figure_banner(
      "fig09",
      "Facebook-ConRep: effect of user degree (Sporadic, k = degree)",
      "availability grows with user degree and is nearly identical across "
      "policies (all friends may host); delays differ — MaxAv uses fewer "
      "replicas and shows the lowest delay");
  const auto env = bench::load_env("facebook");

  sim::Study study(env.dataset, env.seed);
  auto opts = env.options();
  const auto sweep = study.user_degree_sweep(
      10, onlinetime::ModelKind::kSporadic, {},
      placement::Connectivity::kConRep, opts);

  bench::report_metric("fig09a_availability",
                       "Fig 9a: availability vs user degree", sweep,
                       sim::Metric::kAvailability);
  bench::report_metric("fig09b_delay",
                       "Fig 9b: update delay vs user degree", sweep,
                       sim::Metric::kDelayActualH);
  return 0;
}
