file(REMOVE_RECURSE
  "CMakeFiles/test_delay.dir/test_delay.cpp.o"
  "CMakeFiles/test_delay.dir/test_delay.cpp.o.d"
  "test_delay"
  "test_delay.pdb"
  "test_delay[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_delay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
