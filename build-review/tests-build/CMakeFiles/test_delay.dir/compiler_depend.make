# Empty compiler generated dependencies file for test_delay.
# This may be replaced when dependencies are built.
