# Empty dependencies file for test_cross_validation.
# This may be replaced when dependencies are built.
