file(REMOVE_RECURSE
  "CMakeFiles/test_cross_validation.dir/test_cross_validation.cpp.o"
  "CMakeFiles/test_cross_validation.dir/test_cross_validation.cpp.o.d"
  "test_cross_validation"
  "test_cross_validation.pdb"
  "test_cross_validation[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cross_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
