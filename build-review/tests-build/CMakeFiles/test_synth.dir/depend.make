# Empty dependencies file for test_synth.
# This may be replaced when dependencies are built.
