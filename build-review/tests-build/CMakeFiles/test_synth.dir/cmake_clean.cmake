file(REMOVE_RECURSE
  "CMakeFiles/test_synth.dir/test_synth.cpp.o"
  "CMakeFiles/test_synth.dir/test_synth.cpp.o.d"
  "test_synth"
  "test_synth.pdb"
  "test_synth[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
