file(REMOVE_RECURSE
  "CMakeFiles/test_dht.dir/test_dht.cpp.o"
  "CMakeFiles/test_dht.dir/test_dht.cpp.o.d"
  "test_dht"
  "test_dht.pdb"
  "test_dht[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dht.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
