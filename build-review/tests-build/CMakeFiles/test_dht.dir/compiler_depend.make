# Empty compiler generated dependencies file for test_dht.
# This may be replaced when dependencies are built.
