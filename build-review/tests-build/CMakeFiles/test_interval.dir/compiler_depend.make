# Empty compiler generated dependencies file for test_interval.
# This may be replaced when dependencies are built.
