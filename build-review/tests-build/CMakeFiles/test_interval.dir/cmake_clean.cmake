file(REMOVE_RECURSE
  "CMakeFiles/test_interval.dir/test_interval.cpp.o"
  "CMakeFiles/test_interval.dir/test_interval.cpp.o.d"
  "test_interval"
  "test_interval.pdb"
  "test_interval[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_interval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
