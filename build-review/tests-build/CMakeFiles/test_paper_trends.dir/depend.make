# Empty dependencies file for test_paper_trends.
# This may be replaced when dependencies are built.
