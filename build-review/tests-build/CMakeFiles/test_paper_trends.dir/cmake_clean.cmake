file(REMOVE_RECURSE
  "CMakeFiles/test_paper_trends.dir/test_paper_trends.cpp.o"
  "CMakeFiles/test_paper_trends.dir/test_paper_trends.cpp.o.d"
  "test_paper_trends"
  "test_paper_trends.pdb"
  "test_paper_trends[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_paper_trends.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
