# Empty dependencies file for test_profile_sync.
# This may be replaced when dependencies are built.
