file(REMOVE_RECURSE
  "CMakeFiles/test_profile_sync.dir/test_profile_sync.cpp.o"
  "CMakeFiles/test_profile_sync.dir/test_profile_sync.cpp.o.d"
  "test_profile_sync"
  "test_profile_sync.pdb"
  "test_profile_sync[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_profile_sync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
