file(REMOVE_RECURSE
  "CMakeFiles/test_statistics.dir/test_statistics.cpp.o"
  "CMakeFiles/test_statistics.dir/test_statistics.cpp.o.d"
  "test_statistics"
  "test_statistics.pdb"
  "test_statistics[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_statistics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
