# Empty compiler generated dependencies file for test_statistics.
# This may be replaced when dependencies are built.
