# Empty compiler generated dependencies file for test_day_schedule.
# This may be replaced when dependencies are built.
