file(REMOVE_RECURSE
  "CMakeFiles/test_day_schedule.dir/test_day_schedule.cpp.o"
  "CMakeFiles/test_day_schedule.dir/test_day_schedule.cpp.o.d"
  "test_day_schedule"
  "test_day_schedule.pdb"
  "test_day_schedule[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_day_schedule.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
