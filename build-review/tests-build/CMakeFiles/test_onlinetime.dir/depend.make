# Empty dependencies file for test_onlinetime.
# This may be replaced when dependencies are built.
