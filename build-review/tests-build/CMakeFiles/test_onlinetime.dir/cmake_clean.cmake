file(REMOVE_RECURSE
  "CMakeFiles/test_onlinetime.dir/test_onlinetime.cpp.o"
  "CMakeFiles/test_onlinetime.dir/test_onlinetime.cpp.o.d"
  "test_onlinetime"
  "test_onlinetime.pdb"
  "test_onlinetime[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_onlinetime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
