file(REMOVE_RECURSE
  "CMakeFiles/test_timeline.dir/test_timeline.cpp.o"
  "CMakeFiles/test_timeline.dir/test_timeline.cpp.o.d"
  "test_timeline"
  "test_timeline.pdb"
  "test_timeline[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_timeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
