# Empty dependencies file for test_timeline.
# This may be replaced when dependencies are built.
