# Empty compiler generated dependencies file for test_parsers.
# This may be replaced when dependencies are built.
