file(REMOVE_RECURSE
  "CMakeFiles/test_parsers.dir/test_parsers.cpp.o"
  "CMakeFiles/test_parsers.dir/test_parsers.cpp.o.d"
  "test_parsers"
  "test_parsers.pdb"
  "test_parsers[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_parsers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
