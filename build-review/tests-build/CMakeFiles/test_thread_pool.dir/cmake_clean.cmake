file(REMOVE_RECURSE
  "CMakeFiles/test_thread_pool.dir/test_thread_pool.cpp.o"
  "CMakeFiles/test_thread_pool.dir/test_thread_pool.cpp.o.d"
  "test_thread_pool"
  "test_thread_pool.pdb"
  "test_thread_pool[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_thread_pool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
