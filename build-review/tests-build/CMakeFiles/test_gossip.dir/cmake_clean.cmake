file(REMOVE_RECURSE
  "CMakeFiles/test_gossip.dir/test_gossip.cpp.o"
  "CMakeFiles/test_gossip.dir/test_gossip.cpp.o.d"
  "test_gossip"
  "test_gossip.pdb"
  "test_gossip[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gossip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
