# Empty dependencies file for test_gossip.
# This may be replaced when dependencies are built.
