# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build-review/tests-build
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-review/tests-build/test_util[1]_include.cmake")
include("/root/repo/build-review/tests-build/test_thread_pool[1]_include.cmake")
include("/root/repo/build-review/tests-build/test_interval[1]_include.cmake")
include("/root/repo/build-review/tests-build/test_day_schedule[1]_include.cmake")
include("/root/repo/build-review/tests-build/test_graph[1]_include.cmake")
include("/root/repo/build-review/tests-build/test_trace[1]_include.cmake")
include("/root/repo/build-review/tests-build/test_parsers[1]_include.cmake")
include("/root/repo/build-review/tests-build/test_synth[1]_include.cmake")
include("/root/repo/build-review/tests-build/test_onlinetime[1]_include.cmake")
include("/root/repo/build-review/tests-build/test_placement[1]_include.cmake")
include("/root/repo/build-review/tests-build/test_metrics[1]_include.cmake")
include("/root/repo/build-review/tests-build/test_delay[1]_include.cmake")
include("/root/repo/build-review/tests-build/test_net[1]_include.cmake")
include("/root/repo/build-review/tests-build/test_profile_sync[1]_include.cmake")
include("/root/repo/build-review/tests-build/test_gossip[1]_include.cmake")
include("/root/repo/build-review/tests-build/test_dht[1]_include.cmake")
include("/root/repo/build-review/tests-build/test_core[1]_include.cmake")
include("/root/repo/build-review/tests-build/test_sim[1]_include.cmake")
include("/root/repo/build-review/tests-build/test_integration[1]_include.cmake")
include("/root/repo/build-review/tests-build/test_properties[1]_include.cmake")
include("/root/repo/build-review/tests-build/test_extensions[1]_include.cmake")
include("/root/repo/build-review/tests-build/test_fuzz[1]_include.cmake")
include("/root/repo/build-review/tests-build/test_analysis[1]_include.cmake")
include("/root/repo/build-review/tests-build/test_timeline[1]_include.cmake")
include("/root/repo/build-review/tests-build/test_statistics[1]_include.cmake")
include("/root/repo/build-review/tests-build/test_paper_trends[1]_include.cmake")
include("/root/repo/build-review/tests-build/test_cross_validation[1]_include.cmake")
