file(REMOVE_RECURSE
  "../bench/ablation_gossip_protocol"
  "../bench/ablation_gossip_protocol.pdb"
  "CMakeFiles/ablation_gossip_protocol.dir/ablation_gossip_protocol.cpp.o"
  "CMakeFiles/ablation_gossip_protocol.dir/ablation_gossip_protocol.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_gossip_protocol.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
