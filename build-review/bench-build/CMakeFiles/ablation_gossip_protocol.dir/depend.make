# Empty dependencies file for ablation_gossip_protocol.
# This may be replaced when dependencies are built.
