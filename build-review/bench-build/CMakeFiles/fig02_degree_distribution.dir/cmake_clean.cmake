file(REMOVE_RECURSE
  "../bench/fig02_degree_distribution"
  "../bench/fig02_degree_distribution.pdb"
  "CMakeFiles/fig02_degree_distribution.dir/fig02_degree_distribution.cpp.o"
  "CMakeFiles/fig02_degree_distribution.dir/fig02_degree_distribution.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_degree_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
