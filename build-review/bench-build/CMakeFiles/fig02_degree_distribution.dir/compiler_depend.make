# Empty compiler generated dependencies file for fig02_degree_distribution.
# This may be replaced when dependencies are built.
