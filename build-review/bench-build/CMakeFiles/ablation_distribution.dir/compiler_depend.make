# Empty compiler generated dependencies file for ablation_distribution.
# This may be replaced when dependencies are built.
