file(REMOVE_RECURSE
  "../bench/ablation_distribution"
  "../bench/ablation_distribution.pdb"
  "CMakeFiles/ablation_distribution.dir/ablation_distribution.cpp.o"
  "CMakeFiles/ablation_distribution.dir/ablation_distribution.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
