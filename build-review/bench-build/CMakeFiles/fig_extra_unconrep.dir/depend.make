# Empty dependencies file for fig_extra_unconrep.
# This may be replaced when dependencies are built.
