file(REMOVE_RECURSE
  "../bench/fig_extra_unconrep"
  "../bench/fig_extra_unconrep.pdb"
  "CMakeFiles/fig_extra_unconrep.dir/fig_extra_unconrep.cpp.o"
  "CMakeFiles/fig_extra_unconrep.dir/fig_extra_unconrep.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_extra_unconrep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
