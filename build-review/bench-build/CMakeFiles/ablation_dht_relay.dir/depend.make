# Empty dependencies file for ablation_dht_relay.
# This may be replaced when dependencies are built.
