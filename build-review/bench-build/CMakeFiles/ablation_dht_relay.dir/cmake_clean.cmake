file(REMOVE_RECURSE
  "../bench/ablation_dht_relay"
  "../bench/ablation_dht_relay.pdb"
  "CMakeFiles/ablation_dht_relay.dir/ablation_dht_relay.cpp.o"
  "CMakeFiles/ablation_dht_relay.dir/ablation_dht_relay.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_dht_relay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
