file(REMOVE_RECURSE
  "../bench/fig05_fb_aod_time"
  "../bench/fig05_fb_aod_time.pdb"
  "CMakeFiles/fig05_fb_aod_time.dir/fig05_fb_aod_time.cpp.o"
  "CMakeFiles/fig05_fb_aod_time.dir/fig05_fb_aod_time.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_fb_aod_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
