# Empty dependencies file for fig05_fb_aod_time.
# This may be replaced when dependencies are built.
