# Empty dependencies file for study_engine.
# This may be replaced when dependencies are built.
