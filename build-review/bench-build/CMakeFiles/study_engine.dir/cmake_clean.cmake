file(REMOVE_RECURSE
  "../bench/study_engine"
  "../bench/study_engine.pdb"
  "CMakeFiles/study_engine.dir/study_engine.cpp.o"
  "CMakeFiles/study_engine.dir/study_engine.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/study_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
