file(REMOVE_RECURSE
  "../bench/ablation_placement_extensions"
  "../bench/ablation_placement_extensions.pdb"
  "CMakeFiles/ablation_placement_extensions.dir/ablation_placement_extensions.cpp.o"
  "CMakeFiles/ablation_placement_extensions.dir/ablation_placement_extensions.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_placement_extensions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
