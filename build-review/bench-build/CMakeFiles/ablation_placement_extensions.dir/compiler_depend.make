# Empty compiler generated dependencies file for ablation_placement_extensions.
# This may be replaced when dependencies are built.
