file(REMOVE_RECURSE
  "../bench/fig11_tw_aod_time"
  "../bench/fig11_tw_aod_time.pdb"
  "CMakeFiles/fig11_tw_aod_time.dir/fig11_tw_aod_time.cpp.o"
  "CMakeFiles/fig11_tw_aod_time.dir/fig11_tw_aod_time.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_tw_aod_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
