# Empty compiler generated dependencies file for fig11_tw_aod_time.
# This may be replaced when dependencies are built.
