# Empty compiler generated dependencies file for fig04_fb_unconrep_availability.
# This may be replaced when dependencies are built.
