file(REMOVE_RECURSE
  "../bench/fig04_fb_unconrep_availability"
  "../bench/fig04_fb_unconrep_availability.pdb"
  "CMakeFiles/fig04_fb_unconrep_availability.dir/fig04_fb_unconrep_availability.cpp.o"
  "CMakeFiles/fig04_fb_unconrep_availability.dir/fig04_fb_unconrep_availability.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_fb_unconrep_availability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
