file(REMOVE_RECURSE
  "CMakeFiles/dosn_bench_common.dir/common.cpp.o"
  "CMakeFiles/dosn_bench_common.dir/common.cpp.o.d"
  "libdosn_bench_common.a"
  "libdosn_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dosn_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
