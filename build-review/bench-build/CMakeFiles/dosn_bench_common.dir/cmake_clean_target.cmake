file(REMOVE_RECURSE
  "libdosn_bench_common.a"
)
