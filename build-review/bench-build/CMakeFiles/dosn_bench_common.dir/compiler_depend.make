# Empty compiler generated dependencies file for dosn_bench_common.
# This may be replaced when dependencies are built.
