file(REMOVE_RECURSE
  "../bench/fig08_fb_session_length"
  "../bench/fig08_fb_session_length.pdb"
  "CMakeFiles/fig08_fb_session_length.dir/fig08_fb_session_length.cpp.o"
  "CMakeFiles/fig08_fb_session_length.dir/fig08_fb_session_length.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_fb_session_length.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
