# Empty compiler generated dependencies file for fig08_fb_session_length.
# This may be replaced when dependencies are built.
