# Empty dependencies file for fig03_fb_conrep_availability.
# This may be replaced when dependencies are built.
