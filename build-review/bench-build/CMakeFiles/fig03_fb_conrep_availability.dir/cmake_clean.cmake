file(REMOVE_RECURSE
  "../bench/fig03_fb_conrep_availability"
  "../bench/fig03_fb_conrep_availability.pdb"
  "CMakeFiles/fig03_fb_conrep_availability.dir/fig03_fb_conrep_availability.cpp.o"
  "CMakeFiles/fig03_fb_conrep_availability.dir/fig03_fb_conrep_availability.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_fb_conrep_availability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
