file(REMOVE_RECURSE
  "../bench/fig10_tw_availability"
  "../bench/fig10_tw_availability.pdb"
  "CMakeFiles/fig10_tw_availability.dir/fig10_tw_availability.cpp.o"
  "CMakeFiles/fig10_tw_availability.dir/fig10_tw_availability.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_tw_availability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
