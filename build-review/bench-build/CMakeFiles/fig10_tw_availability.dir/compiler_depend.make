# Empty compiler generated dependencies file for fig10_tw_availability.
# This may be replaced when dependencies are built.
