file(REMOVE_RECURSE
  "../bench/ablation_projection"
  "../bench/ablation_projection.pdb"
  "CMakeFiles/ablation_projection.dir/ablation_projection.cpp.o"
  "CMakeFiles/ablation_projection.dir/ablation_projection.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_projection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
