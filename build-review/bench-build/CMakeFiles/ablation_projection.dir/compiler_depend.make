# Empty compiler generated dependencies file for ablation_projection.
# This may be replaced when dependencies are built.
