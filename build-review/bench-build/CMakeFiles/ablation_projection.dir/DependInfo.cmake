
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_projection.cpp" "bench-build/CMakeFiles/ablation_projection.dir/ablation_projection.cpp.o" "gcc" "bench-build/CMakeFiles/ablation_projection.dir/ablation_projection.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/bench-build/CMakeFiles/dosn_bench_common.dir/DependInfo.cmake"
  "/root/repo/build-review/src/net/CMakeFiles/dosn_net.dir/DependInfo.cmake"
  "/root/repo/build-review/src/sim/CMakeFiles/dosn_sim.dir/DependInfo.cmake"
  "/root/repo/build-review/src/synth/CMakeFiles/dosn_synth.dir/DependInfo.cmake"
  "/root/repo/build-review/src/metrics/CMakeFiles/dosn_metrics.dir/DependInfo.cmake"
  "/root/repo/build-review/src/core/CMakeFiles/dosn_core.dir/DependInfo.cmake"
  "/root/repo/build-review/src/onlinetime/CMakeFiles/dosn_onlinetime.dir/DependInfo.cmake"
  "/root/repo/build-review/src/placement/CMakeFiles/dosn_placement.dir/DependInfo.cmake"
  "/root/repo/build-review/src/trace/CMakeFiles/dosn_trace.dir/DependInfo.cmake"
  "/root/repo/build-review/src/interval/CMakeFiles/dosn_interval.dir/DependInfo.cmake"
  "/root/repo/build-review/src/graph/CMakeFiles/dosn_graph.dir/DependInfo.cmake"
  "/root/repo/build-review/src/util/CMakeFiles/dosn_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
