file(REMOVE_RECURSE
  "../bench/ablation_maxav_objective"
  "../bench/ablation_maxav_objective.pdb"
  "CMakeFiles/ablation_maxav_objective.dir/ablation_maxav_objective.cpp.o"
  "CMakeFiles/ablation_maxav_objective.dir/ablation_maxav_objective.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_maxav_objective.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
