# Empty dependencies file for ablation_maxav_objective.
# This may be replaced when dependencies are built.
