# Empty dependencies file for fig09_fb_user_degree.
# This may be replaced when dependencies are built.
