file(REMOVE_RECURSE
  "../bench/fig09_fb_user_degree"
  "../bench/fig09_fb_user_degree.pdb"
  "CMakeFiles/fig09_fb_user_degree.dir/fig09_fb_user_degree.cpp.o"
  "CMakeFiles/fig09_fb_user_degree.dir/fig09_fb_user_degree.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_fb_user_degree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
