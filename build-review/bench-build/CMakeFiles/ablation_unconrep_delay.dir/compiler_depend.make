# Empty compiler generated dependencies file for ablation_unconrep_delay.
# This may be replaced when dependencies are built.
