file(REMOVE_RECURSE
  "../bench/ablation_unconrep_delay"
  "../bench/ablation_unconrep_delay.pdb"
  "CMakeFiles/ablation_unconrep_delay.dir/ablation_unconrep_delay.cpp.o"
  "CMakeFiles/ablation_unconrep_delay.dir/ablation_unconrep_delay.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_unconrep_delay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
