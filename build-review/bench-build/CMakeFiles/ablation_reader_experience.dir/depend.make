# Empty dependencies file for ablation_reader_experience.
# This may be replaced when dependencies are built.
