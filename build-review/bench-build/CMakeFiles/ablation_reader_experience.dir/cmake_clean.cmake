file(REMOVE_RECURSE
  "../bench/ablation_reader_experience"
  "../bench/ablation_reader_experience.pdb"
  "CMakeFiles/ablation_reader_experience.dir/ablation_reader_experience.cpp.o"
  "CMakeFiles/ablation_reader_experience.dir/ablation_reader_experience.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_reader_experience.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
