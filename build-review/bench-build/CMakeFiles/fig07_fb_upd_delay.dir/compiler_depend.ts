# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig07_fb_upd_delay.
