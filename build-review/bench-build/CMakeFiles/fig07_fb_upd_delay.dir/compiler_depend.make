# Empty compiler generated dependencies file for fig07_fb_upd_delay.
# This may be replaced when dependencies are built.
