file(REMOVE_RECURSE
  "../bench/fig07_fb_upd_delay"
  "../bench/fig07_fb_upd_delay.pdb"
  "CMakeFiles/fig07_fb_upd_delay.dir/fig07_fb_upd_delay.cpp.o"
  "CMakeFiles/fig07_fb_upd_delay.dir/fig07_fb_upd_delay.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_fb_upd_delay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
