file(REMOVE_RECURSE
  "../bench/micro_benchmarks"
  "../bench/micro_benchmarks.pdb"
  "CMakeFiles/micro_benchmarks.dir/micro_benchmarks.cpp.o"
  "CMakeFiles/micro_benchmarks.dir/micro_benchmarks.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_benchmarks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
