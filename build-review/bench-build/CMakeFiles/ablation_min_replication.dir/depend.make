# Empty dependencies file for ablation_min_replication.
# This may be replaced when dependencies are built.
