file(REMOVE_RECURSE
  "../bench/ablation_min_replication"
  "../bench/ablation_min_replication.pdb"
  "CMakeFiles/ablation_min_replication.dir/ablation_min_replication.cpp.o"
  "CMakeFiles/ablation_min_replication.dir/ablation_min_replication.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_min_replication.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
