# Empty dependencies file for fig06_fb_aod_activity.
# This may be replaced when dependencies are built.
