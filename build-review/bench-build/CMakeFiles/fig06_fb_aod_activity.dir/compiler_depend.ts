# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig06_fb_aod_activity.
