file(REMOVE_RECURSE
  "../bench/fig06_fb_aod_activity"
  "../bench/fig06_fb_aod_activity.pdb"
  "CMakeFiles/fig06_fb_aod_activity.dir/fig06_fb_aod_activity.cpp.o"
  "CMakeFiles/fig06_fb_aod_activity.dir/fig06_fb_aod_activity.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_fb_aod_activity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
