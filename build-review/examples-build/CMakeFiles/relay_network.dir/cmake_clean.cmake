file(REMOVE_RECURSE
  "../examples/relay_network"
  "../examples/relay_network.pdb"
  "CMakeFiles/relay_network.dir/relay_network.cpp.o"
  "CMakeFiles/relay_network.dir/relay_network.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relay_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
