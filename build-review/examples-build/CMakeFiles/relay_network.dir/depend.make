# Empty dependencies file for relay_network.
# This may be replaced when dependencies are built.
