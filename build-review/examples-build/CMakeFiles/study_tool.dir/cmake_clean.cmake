file(REMOVE_RECURSE
  "../examples/study_tool"
  "../examples/study_tool.pdb"
  "CMakeFiles/study_tool.dir/study_tool.cpp.o"
  "CMakeFiles/study_tool.dir/study_tool.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/study_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
