# Empty compiler generated dependencies file for study_tool.
# This may be replaced when dependencies are built.
