# Empty dependencies file for f2f_network.
# This may be replaced when dependencies are built.
