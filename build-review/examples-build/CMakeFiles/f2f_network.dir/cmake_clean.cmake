file(REMOVE_RECURSE
  "../examples/f2f_network"
  "../examples/f2f_network.pdb"
  "CMakeFiles/f2f_network.dir/f2f_network.cpp.o"
  "CMakeFiles/f2f_network.dir/f2f_network.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/f2f_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
