# Empty dependencies file for facebook_study.
# This may be replaced when dependencies are built.
