file(REMOVE_RECURSE
  "../examples/facebook_study"
  "../examples/facebook_study.pdb"
  "CMakeFiles/facebook_study.dir/facebook_study.cpp.o"
  "CMakeFiles/facebook_study.dir/facebook_study.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/facebook_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
