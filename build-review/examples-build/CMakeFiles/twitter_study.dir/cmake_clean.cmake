file(REMOVE_RECURSE
  "../examples/twitter_study"
  "../examples/twitter_study.pdb"
  "CMakeFiles/twitter_study.dir/twitter_study.cpp.o"
  "CMakeFiles/twitter_study.dir/twitter_study.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/twitter_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
