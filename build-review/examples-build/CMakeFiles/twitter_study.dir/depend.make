# Empty dependencies file for twitter_study.
# This may be replaced when dependencies are built.
