# Empty compiler generated dependencies file for dataset_tool.
# This may be replaced when dependencies are built.
