file(REMOVE_RECURSE
  "../examples/dataset_tool"
  "../examples/dataset_tool.pdb"
  "CMakeFiles/dataset_tool.dir/dataset_tool.cpp.o"
  "CMakeFiles/dataset_tool.dir/dataset_tool.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dataset_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
