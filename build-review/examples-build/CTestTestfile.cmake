# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build-review/examples-build
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build-review/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_f2f_network "/root/repo/build-review/examples/f2f_network")
set_tests_properties(example_f2f_network PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_relay_network "/root/repo/build-review/examples/relay_network")
set_tests_properties(example_relay_network PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_facebook_study "/root/repo/build-review/examples/facebook_study" "0.02")
set_tests_properties(example_facebook_study PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_twitter_study "/root/repo/build-review/examples/twitter_study" "0.02")
set_tests_properties(example_twitter_study PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;23;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_study_tool "/root/repo/build-review/examples/study_tool" "sweep" "--scale" "0.02" "--k" "3" "--reps" "1")
set_tests_properties(example_study_tool PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;24;add_test;/root/repo/examples/CMakeLists.txt;0;")
