file(REMOVE_RECURSE
  "CMakeFiles/dosn_metrics.dir/availability.cpp.o"
  "CMakeFiles/dosn_metrics.dir/availability.cpp.o.d"
  "CMakeFiles/dosn_metrics.dir/delay.cpp.o"
  "CMakeFiles/dosn_metrics.dir/delay.cpp.o.d"
  "libdosn_metrics.a"
  "libdosn_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dosn_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
