# Empty compiler generated dependencies file for dosn_metrics.
# This may be replaced when dependencies are built.
