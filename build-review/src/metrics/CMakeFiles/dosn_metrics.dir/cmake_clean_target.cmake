file(REMOVE_RECURSE
  "libdosn_metrics.a"
)
