file(REMOVE_RECURSE
  "CMakeFiles/dosn_util.dir/alias.cpp.o"
  "CMakeFiles/dosn_util.dir/alias.cpp.o.d"
  "CMakeFiles/dosn_util.dir/ascii_chart.cpp.o"
  "CMakeFiles/dosn_util.dir/ascii_chart.cpp.o.d"
  "CMakeFiles/dosn_util.dir/csv.cpp.o"
  "CMakeFiles/dosn_util.dir/csv.cpp.o.d"
  "CMakeFiles/dosn_util.dir/error.cpp.o"
  "CMakeFiles/dosn_util.dir/error.cpp.o.d"
  "CMakeFiles/dosn_util.dir/logging.cpp.o"
  "CMakeFiles/dosn_util.dir/logging.cpp.o.d"
  "CMakeFiles/dosn_util.dir/rng.cpp.o"
  "CMakeFiles/dosn_util.dir/rng.cpp.o.d"
  "CMakeFiles/dosn_util.dir/stats.cpp.o"
  "CMakeFiles/dosn_util.dir/stats.cpp.o.d"
  "CMakeFiles/dosn_util.dir/strings.cpp.o"
  "CMakeFiles/dosn_util.dir/strings.cpp.o.d"
  "CMakeFiles/dosn_util.dir/table.cpp.o"
  "CMakeFiles/dosn_util.dir/table.cpp.o.d"
  "CMakeFiles/dosn_util.dir/thread_pool.cpp.o"
  "CMakeFiles/dosn_util.dir/thread_pool.cpp.o.d"
  "libdosn_util.a"
  "libdosn_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dosn_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
