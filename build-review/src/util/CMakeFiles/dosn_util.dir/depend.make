# Empty dependencies file for dosn_util.
# This may be replaced when dependencies are built.
