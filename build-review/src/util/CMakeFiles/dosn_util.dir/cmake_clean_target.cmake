file(REMOVE_RECURSE
  "libdosn_util.a"
)
