
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/util/alias.cpp" "src/util/CMakeFiles/dosn_util.dir/alias.cpp.o" "gcc" "src/util/CMakeFiles/dosn_util.dir/alias.cpp.o.d"
  "/root/repo/src/util/ascii_chart.cpp" "src/util/CMakeFiles/dosn_util.dir/ascii_chart.cpp.o" "gcc" "src/util/CMakeFiles/dosn_util.dir/ascii_chart.cpp.o.d"
  "/root/repo/src/util/csv.cpp" "src/util/CMakeFiles/dosn_util.dir/csv.cpp.o" "gcc" "src/util/CMakeFiles/dosn_util.dir/csv.cpp.o.d"
  "/root/repo/src/util/error.cpp" "src/util/CMakeFiles/dosn_util.dir/error.cpp.o" "gcc" "src/util/CMakeFiles/dosn_util.dir/error.cpp.o.d"
  "/root/repo/src/util/logging.cpp" "src/util/CMakeFiles/dosn_util.dir/logging.cpp.o" "gcc" "src/util/CMakeFiles/dosn_util.dir/logging.cpp.o.d"
  "/root/repo/src/util/rng.cpp" "src/util/CMakeFiles/dosn_util.dir/rng.cpp.o" "gcc" "src/util/CMakeFiles/dosn_util.dir/rng.cpp.o.d"
  "/root/repo/src/util/stats.cpp" "src/util/CMakeFiles/dosn_util.dir/stats.cpp.o" "gcc" "src/util/CMakeFiles/dosn_util.dir/stats.cpp.o.d"
  "/root/repo/src/util/strings.cpp" "src/util/CMakeFiles/dosn_util.dir/strings.cpp.o" "gcc" "src/util/CMakeFiles/dosn_util.dir/strings.cpp.o.d"
  "/root/repo/src/util/table.cpp" "src/util/CMakeFiles/dosn_util.dir/table.cpp.o" "gcc" "src/util/CMakeFiles/dosn_util.dir/table.cpp.o.d"
  "/root/repo/src/util/thread_pool.cpp" "src/util/CMakeFiles/dosn_util.dir/thread_pool.cpp.o" "gcc" "src/util/CMakeFiles/dosn_util.dir/thread_pool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
