# Empty dependencies file for dosn_net.
# This may be replaced when dependencies are built.
