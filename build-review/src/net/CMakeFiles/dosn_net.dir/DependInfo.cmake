
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/dht.cpp" "src/net/CMakeFiles/dosn_net.dir/dht.cpp.o" "gcc" "src/net/CMakeFiles/dosn_net.dir/dht.cpp.o.d"
  "/root/repo/src/net/event_queue.cpp" "src/net/CMakeFiles/dosn_net.dir/event_queue.cpp.o" "gcc" "src/net/CMakeFiles/dosn_net.dir/event_queue.cpp.o.d"
  "/root/repo/src/net/gossip.cpp" "src/net/CMakeFiles/dosn_net.dir/gossip.cpp.o" "gcc" "src/net/CMakeFiles/dosn_net.dir/gossip.cpp.o.d"
  "/root/repo/src/net/profile_sync.cpp" "src/net/CMakeFiles/dosn_net.dir/profile_sync.cpp.o" "gcc" "src/net/CMakeFiles/dosn_net.dir/profile_sync.cpp.o.d"
  "/root/repo/src/net/replica_sim.cpp" "src/net/CMakeFiles/dosn_net.dir/replica_sim.cpp.o" "gcc" "src/net/CMakeFiles/dosn_net.dir/replica_sim.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/util/CMakeFiles/dosn_util.dir/DependInfo.cmake"
  "/root/repo/build-review/src/interval/CMakeFiles/dosn_interval.dir/DependInfo.cmake"
  "/root/repo/build-review/src/placement/CMakeFiles/dosn_placement.dir/DependInfo.cmake"
  "/root/repo/build-review/src/core/CMakeFiles/dosn_core.dir/DependInfo.cmake"
  "/root/repo/build-review/src/onlinetime/CMakeFiles/dosn_onlinetime.dir/DependInfo.cmake"
  "/root/repo/build-review/src/trace/CMakeFiles/dosn_trace.dir/DependInfo.cmake"
  "/root/repo/build-review/src/graph/CMakeFiles/dosn_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
