file(REMOVE_RECURSE
  "CMakeFiles/dosn_net.dir/dht.cpp.o"
  "CMakeFiles/dosn_net.dir/dht.cpp.o.d"
  "CMakeFiles/dosn_net.dir/event_queue.cpp.o"
  "CMakeFiles/dosn_net.dir/event_queue.cpp.o.d"
  "CMakeFiles/dosn_net.dir/gossip.cpp.o"
  "CMakeFiles/dosn_net.dir/gossip.cpp.o.d"
  "CMakeFiles/dosn_net.dir/profile_sync.cpp.o"
  "CMakeFiles/dosn_net.dir/profile_sync.cpp.o.d"
  "CMakeFiles/dosn_net.dir/replica_sim.cpp.o"
  "CMakeFiles/dosn_net.dir/replica_sim.cpp.o.d"
  "libdosn_net.a"
  "libdosn_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dosn_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
