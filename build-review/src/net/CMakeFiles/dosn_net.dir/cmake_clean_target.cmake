file(REMOVE_RECURSE
  "libdosn_net.a"
)
