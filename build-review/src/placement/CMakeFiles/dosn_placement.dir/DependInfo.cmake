
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/placement/core_group.cpp" "src/placement/CMakeFiles/dosn_placement.dir/core_group.cpp.o" "gcc" "src/placement/CMakeFiles/dosn_placement.dir/core_group.cpp.o.d"
  "/root/repo/src/placement/hybrid.cpp" "src/placement/CMakeFiles/dosn_placement.dir/hybrid.cpp.o" "gcc" "src/placement/CMakeFiles/dosn_placement.dir/hybrid.cpp.o.d"
  "/root/repo/src/placement/max_av.cpp" "src/placement/CMakeFiles/dosn_placement.dir/max_av.cpp.o" "gcc" "src/placement/CMakeFiles/dosn_placement.dir/max_av.cpp.o.d"
  "/root/repo/src/placement/most_active.cpp" "src/placement/CMakeFiles/dosn_placement.dir/most_active.cpp.o" "gcc" "src/placement/CMakeFiles/dosn_placement.dir/most_active.cpp.o.d"
  "/root/repo/src/placement/policy.cpp" "src/placement/CMakeFiles/dosn_placement.dir/policy.cpp.o" "gcc" "src/placement/CMakeFiles/dosn_placement.dir/policy.cpp.o.d"
  "/root/repo/src/placement/random.cpp" "src/placement/CMakeFiles/dosn_placement.dir/random.cpp.o" "gcc" "src/placement/CMakeFiles/dosn_placement.dir/random.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/util/CMakeFiles/dosn_util.dir/DependInfo.cmake"
  "/root/repo/build-review/src/interval/CMakeFiles/dosn_interval.dir/DependInfo.cmake"
  "/root/repo/build-review/src/graph/CMakeFiles/dosn_graph.dir/DependInfo.cmake"
  "/root/repo/build-review/src/trace/CMakeFiles/dosn_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
