file(REMOVE_RECURSE
  "CMakeFiles/dosn_placement.dir/core_group.cpp.o"
  "CMakeFiles/dosn_placement.dir/core_group.cpp.o.d"
  "CMakeFiles/dosn_placement.dir/hybrid.cpp.o"
  "CMakeFiles/dosn_placement.dir/hybrid.cpp.o.d"
  "CMakeFiles/dosn_placement.dir/max_av.cpp.o"
  "CMakeFiles/dosn_placement.dir/max_av.cpp.o.d"
  "CMakeFiles/dosn_placement.dir/most_active.cpp.o"
  "CMakeFiles/dosn_placement.dir/most_active.cpp.o.d"
  "CMakeFiles/dosn_placement.dir/policy.cpp.o"
  "CMakeFiles/dosn_placement.dir/policy.cpp.o.d"
  "CMakeFiles/dosn_placement.dir/random.cpp.o"
  "CMakeFiles/dosn_placement.dir/random.cpp.o.d"
  "libdosn_placement.a"
  "libdosn_placement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dosn_placement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
