file(REMOVE_RECURSE
  "libdosn_placement.a"
)
