# Empty compiler generated dependencies file for dosn_placement.
# This may be replaced when dependencies are built.
