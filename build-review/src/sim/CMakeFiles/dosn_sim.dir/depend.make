# Empty dependencies file for dosn_sim.
# This may be replaced when dependencies are built.
