file(REMOVE_RECURSE
  "CMakeFiles/dosn_sim.dir/evaluate.cpp.o"
  "CMakeFiles/dosn_sim.dir/evaluate.cpp.o.d"
  "CMakeFiles/dosn_sim.dir/study.cpp.o"
  "CMakeFiles/dosn_sim.dir/study.cpp.o.d"
  "CMakeFiles/dosn_sim.dir/timeline.cpp.o"
  "CMakeFiles/dosn_sim.dir/timeline.cpp.o.d"
  "libdosn_sim.a"
  "libdosn_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dosn_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
