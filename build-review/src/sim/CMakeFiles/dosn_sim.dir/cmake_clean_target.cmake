file(REMOVE_RECURSE
  "libdosn_sim.a"
)
