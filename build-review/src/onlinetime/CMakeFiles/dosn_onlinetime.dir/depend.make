# Empty dependencies file for dosn_onlinetime.
# This may be replaced when dependencies are built.
