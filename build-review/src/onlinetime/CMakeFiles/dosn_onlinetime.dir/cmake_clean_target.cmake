file(REMOVE_RECURSE
  "libdosn_onlinetime.a"
)
