
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/onlinetime/continuous.cpp" "src/onlinetime/CMakeFiles/dosn_onlinetime.dir/continuous.cpp.o" "gcc" "src/onlinetime/CMakeFiles/dosn_onlinetime.dir/continuous.cpp.o.d"
  "/root/repo/src/onlinetime/enriched.cpp" "src/onlinetime/CMakeFiles/dosn_onlinetime.dir/enriched.cpp.o" "gcc" "src/onlinetime/CMakeFiles/dosn_onlinetime.dir/enriched.cpp.o.d"
  "/root/repo/src/onlinetime/model.cpp" "src/onlinetime/CMakeFiles/dosn_onlinetime.dir/model.cpp.o" "gcc" "src/onlinetime/CMakeFiles/dosn_onlinetime.dir/model.cpp.o.d"
  "/root/repo/src/onlinetime/sessions.cpp" "src/onlinetime/CMakeFiles/dosn_onlinetime.dir/sessions.cpp.o" "gcc" "src/onlinetime/CMakeFiles/dosn_onlinetime.dir/sessions.cpp.o.d"
  "/root/repo/src/onlinetime/sporadic.cpp" "src/onlinetime/CMakeFiles/dosn_onlinetime.dir/sporadic.cpp.o" "gcc" "src/onlinetime/CMakeFiles/dosn_onlinetime.dir/sporadic.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/util/CMakeFiles/dosn_util.dir/DependInfo.cmake"
  "/root/repo/build-review/src/interval/CMakeFiles/dosn_interval.dir/DependInfo.cmake"
  "/root/repo/build-review/src/trace/CMakeFiles/dosn_trace.dir/DependInfo.cmake"
  "/root/repo/build-review/src/graph/CMakeFiles/dosn_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
