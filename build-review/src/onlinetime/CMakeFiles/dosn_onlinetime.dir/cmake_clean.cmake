file(REMOVE_RECURSE
  "CMakeFiles/dosn_onlinetime.dir/continuous.cpp.o"
  "CMakeFiles/dosn_onlinetime.dir/continuous.cpp.o.d"
  "CMakeFiles/dosn_onlinetime.dir/enriched.cpp.o"
  "CMakeFiles/dosn_onlinetime.dir/enriched.cpp.o.d"
  "CMakeFiles/dosn_onlinetime.dir/model.cpp.o"
  "CMakeFiles/dosn_onlinetime.dir/model.cpp.o.d"
  "CMakeFiles/dosn_onlinetime.dir/sessions.cpp.o"
  "CMakeFiles/dosn_onlinetime.dir/sessions.cpp.o.d"
  "CMakeFiles/dosn_onlinetime.dir/sporadic.cpp.o"
  "CMakeFiles/dosn_onlinetime.dir/sporadic.cpp.o.d"
  "libdosn_onlinetime.a"
  "libdosn_onlinetime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dosn_onlinetime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
