file(REMOVE_RECURSE
  "libdosn_synth.a"
)
