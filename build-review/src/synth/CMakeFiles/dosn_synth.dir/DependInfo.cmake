
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/synth/generators.cpp" "src/synth/CMakeFiles/dosn_synth.dir/generators.cpp.o" "gcc" "src/synth/CMakeFiles/dosn_synth.dir/generators.cpp.o.d"
  "/root/repo/src/synth/presets.cpp" "src/synth/CMakeFiles/dosn_synth.dir/presets.cpp.o" "gcc" "src/synth/CMakeFiles/dosn_synth.dir/presets.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/util/CMakeFiles/dosn_util.dir/DependInfo.cmake"
  "/root/repo/build-review/src/graph/CMakeFiles/dosn_graph.dir/DependInfo.cmake"
  "/root/repo/build-review/src/trace/CMakeFiles/dosn_trace.dir/DependInfo.cmake"
  "/root/repo/build-review/src/interval/CMakeFiles/dosn_interval.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
