# Empty dependencies file for dosn_synth.
# This may be replaced when dependencies are built.
