file(REMOVE_RECURSE
  "CMakeFiles/dosn_synth.dir/generators.cpp.o"
  "CMakeFiles/dosn_synth.dir/generators.cpp.o.d"
  "CMakeFiles/dosn_synth.dir/presets.cpp.o"
  "CMakeFiles/dosn_synth.dir/presets.cpp.o.d"
  "libdosn_synth.a"
  "libdosn_synth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dosn_synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
