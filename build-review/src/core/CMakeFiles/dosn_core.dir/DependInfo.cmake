
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/profile.cpp" "src/core/CMakeFiles/dosn_core.dir/profile.cpp.o" "gcc" "src/core/CMakeFiles/dosn_core.dir/profile.cpp.o.d"
  "/root/repo/src/core/replica_manager.cpp" "src/core/CMakeFiles/dosn_core.dir/replica_manager.cpp.o" "gcc" "src/core/CMakeFiles/dosn_core.dir/replica_manager.cpp.o.d"
  "/root/repo/src/core/version_vector.cpp" "src/core/CMakeFiles/dosn_core.dir/version_vector.cpp.o" "gcc" "src/core/CMakeFiles/dosn_core.dir/version_vector.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/util/CMakeFiles/dosn_util.dir/DependInfo.cmake"
  "/root/repo/build-review/src/interval/CMakeFiles/dosn_interval.dir/DependInfo.cmake"
  "/root/repo/build-review/src/graph/CMakeFiles/dosn_graph.dir/DependInfo.cmake"
  "/root/repo/build-review/src/trace/CMakeFiles/dosn_trace.dir/DependInfo.cmake"
  "/root/repo/build-review/src/placement/CMakeFiles/dosn_placement.dir/DependInfo.cmake"
  "/root/repo/build-review/src/onlinetime/CMakeFiles/dosn_onlinetime.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
