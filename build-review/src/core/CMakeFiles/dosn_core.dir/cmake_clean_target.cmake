file(REMOVE_RECURSE
  "libdosn_core.a"
)
