# Empty compiler generated dependencies file for dosn_core.
# This may be replaced when dependencies are built.
