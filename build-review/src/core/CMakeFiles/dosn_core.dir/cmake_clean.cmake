file(REMOVE_RECURSE
  "CMakeFiles/dosn_core.dir/profile.cpp.o"
  "CMakeFiles/dosn_core.dir/profile.cpp.o.d"
  "CMakeFiles/dosn_core.dir/replica_manager.cpp.o"
  "CMakeFiles/dosn_core.dir/replica_manager.cpp.o.d"
  "CMakeFiles/dosn_core.dir/version_vector.cpp.o"
  "CMakeFiles/dosn_core.dir/version_vector.cpp.o.d"
  "libdosn_core.a"
  "libdosn_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dosn_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
