# Empty compiler generated dependencies file for dosn_trace.
# This may be replaced when dependencies are built.
