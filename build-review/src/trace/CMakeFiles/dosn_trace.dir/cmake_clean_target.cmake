file(REMOVE_RECURSE
  "libdosn_trace.a"
)
