file(REMOVE_RECURSE
  "CMakeFiles/dosn_trace.dir/activity.cpp.o"
  "CMakeFiles/dosn_trace.dir/activity.cpp.o.d"
  "CMakeFiles/dosn_trace.dir/dataset.cpp.o"
  "CMakeFiles/dosn_trace.dir/dataset.cpp.o.d"
  "CMakeFiles/dosn_trace.dir/parsers.cpp.o"
  "CMakeFiles/dosn_trace.dir/parsers.cpp.o.d"
  "CMakeFiles/dosn_trace.dir/statistics.cpp.o"
  "CMakeFiles/dosn_trace.dir/statistics.cpp.o.d"
  "libdosn_trace.a"
  "libdosn_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dosn_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
