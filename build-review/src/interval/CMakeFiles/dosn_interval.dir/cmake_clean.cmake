file(REMOVE_RECURSE
  "CMakeFiles/dosn_interval.dir/day_schedule.cpp.o"
  "CMakeFiles/dosn_interval.dir/day_schedule.cpp.o.d"
  "CMakeFiles/dosn_interval.dir/delay_graph.cpp.o"
  "CMakeFiles/dosn_interval.dir/delay_graph.cpp.o.d"
  "CMakeFiles/dosn_interval.dir/interval_set.cpp.o"
  "CMakeFiles/dosn_interval.dir/interval_set.cpp.o.d"
  "libdosn_interval.a"
  "libdosn_interval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dosn_interval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
