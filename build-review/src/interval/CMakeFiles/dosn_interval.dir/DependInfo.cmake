
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/interval/day_schedule.cpp" "src/interval/CMakeFiles/dosn_interval.dir/day_schedule.cpp.o" "gcc" "src/interval/CMakeFiles/dosn_interval.dir/day_schedule.cpp.o.d"
  "/root/repo/src/interval/delay_graph.cpp" "src/interval/CMakeFiles/dosn_interval.dir/delay_graph.cpp.o" "gcc" "src/interval/CMakeFiles/dosn_interval.dir/delay_graph.cpp.o.d"
  "/root/repo/src/interval/interval_set.cpp" "src/interval/CMakeFiles/dosn_interval.dir/interval_set.cpp.o" "gcc" "src/interval/CMakeFiles/dosn_interval.dir/interval_set.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/util/CMakeFiles/dosn_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
