# Empty compiler generated dependencies file for dosn_interval.
# This may be replaced when dependencies are built.
