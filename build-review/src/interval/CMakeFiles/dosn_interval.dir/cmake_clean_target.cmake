file(REMOVE_RECURSE
  "libdosn_interval.a"
)
