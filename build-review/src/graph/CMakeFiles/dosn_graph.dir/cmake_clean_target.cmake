file(REMOVE_RECURSE
  "libdosn_graph.a"
)
