# Empty compiler generated dependencies file for dosn_graph.
# This may be replaced when dependencies are built.
