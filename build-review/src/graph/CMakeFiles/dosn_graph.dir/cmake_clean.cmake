file(REMOVE_RECURSE
  "CMakeFiles/dosn_graph.dir/analysis.cpp.o"
  "CMakeFiles/dosn_graph.dir/analysis.cpp.o.d"
  "CMakeFiles/dosn_graph.dir/degree_stats.cpp.o"
  "CMakeFiles/dosn_graph.dir/degree_stats.cpp.o.d"
  "CMakeFiles/dosn_graph.dir/social_graph.cpp.o"
  "CMakeFiles/dosn_graph.dir/social_graph.cpp.o.d"
  "libdosn_graph.a"
  "libdosn_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dosn_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
