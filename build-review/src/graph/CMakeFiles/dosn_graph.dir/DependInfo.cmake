
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/analysis.cpp" "src/graph/CMakeFiles/dosn_graph.dir/analysis.cpp.o" "gcc" "src/graph/CMakeFiles/dosn_graph.dir/analysis.cpp.o.d"
  "/root/repo/src/graph/degree_stats.cpp" "src/graph/CMakeFiles/dosn_graph.dir/degree_stats.cpp.o" "gcc" "src/graph/CMakeFiles/dosn_graph.dir/degree_stats.cpp.o.d"
  "/root/repo/src/graph/social_graph.cpp" "src/graph/CMakeFiles/dosn_graph.dir/social_graph.cpp.o" "gcc" "src/graph/CMakeFiles/dosn_graph.dir/social_graph.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/util/CMakeFiles/dosn_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
